package server

import (
	"io"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// RenderPrometheus writes a metrics snapshot in the Prometheus text
// exposition format. It is a pure function of the snapshot, so the output
// is deterministic (maps are emitted in sorted key order) and golden-
// testable. Latencies are converted from the registry's milliseconds to
// Prometheus-conventional seconds. Latency labels carrying the
// "stage." prefix render as the per-stage histogram family
// ridserve_stage_duration_seconds{stage="..."} — the pipeline breakdown —
// while the rest stay under ridserve_latency_seconds{op="..."}.
func RenderPrometheus(w io.Writer, s *Snapshot) error {
	p := obs.NewPromWriter(w)
	renderMetricFamilies(p, s)
	return p.Err()
}

// RenderOpenMetrics writes the same snapshot in the OpenMetrics 1.0 text
// format: identical family sequence, but with OpenMetrics metadata
// ordering, trace-id exemplars on latency histogram buckets, and the
// mandatory # EOF terminator.
func RenderOpenMetrics(w io.Writer, s *Snapshot) error {
	p := obs.NewOpenMetricsWriter(w)
	renderMetricFamilies(p, s)
	p.EOF()
	return p.Err()
}

// renderMetricFamilies emits every family; the writer's mode decides the
// concrete syntax (Prometheus 0.0.4 vs OpenMetrics 1.0).
func renderMetricFamilies(p *obs.PromWriter, s *Snapshot) {
	p.Header("ridserve_uptime_seconds", "Seconds since the server started.", "gauge")
	p.Sample("ridserve_uptime_seconds", nil, s.UptimeSeconds)

	p.Header("ridserve_build_info", "Build metadata; the value is always 1.", "gauge")
	p.Sample("ridserve_build_info", []obs.PromLabel{
		{Name: "go_arch", Value: s.Build.GOARCH},
		{Name: "go_os", Value: s.Build.GOOS},
		{Name: "go_version", Value: s.Build.GoVersion},
		{Name: "gomaxprocs", Value: strconv.Itoa(s.Build.GOMAXPROCS)},
		{Name: "num_cpu", Value: strconv.Itoa(s.Build.NumCPU)},
	}, 1)

	if len(s.Requests) > 0 {
		p.Header("ridserve_requests_total", "Requests served, by route and status.", "counter")
		for _, route := range obs.SortedKeys(s.Requests) {
			byStatus := s.Requests[route]
			for _, status := range obs.SortedKeys(byStatus) {
				p.IntSample("ridserve_requests_total", []obs.PromLabel{
					{Name: "route", Value: route},
					{Name: "status", Value: status},
				}, byStatus[status])
			}
		}
	}

	var opLabels, stageLabels []string
	for _, label := range obs.SortedKeys(s.LatencyMS) {
		if strings.HasPrefix(label, stagePrefix) {
			stageLabels = append(stageLabels, label)
		} else {
			opLabels = append(opLabels, label)
		}
	}
	writeLatencyFamily(p, "ridserve_latency_seconds",
		"Operation latency, by route and detector.", "op", opLabels, s, "")
	writeLatencyFamily(p, "ridserve_stage_duration_seconds",
		"Per-request pipeline stage wall time, by stage.", "stage", stageLabels, s, stagePrefix)

	if len(s.Pipeline) > 0 {
		p.Header("ridserve_pipeline_events_total", "Pipeline work counters accumulated across detects.", "counter")
		for _, name := range obs.SortedKeys(s.Pipeline) {
			p.IntSample("ridserve_pipeline_events_total",
				[]obs.PromLabel{{Name: "event", Value: name}}, s.Pipeline[name])
		}
	}

	if s.Algo != nil {
		p.Header("ridserve_algo_events_total",
			"Algorithm-depth work counters (arborescence kernel ops, forest extraction, tree DP modes, diffusion) accumulated across requests.",
			"counter")
		s.Algo.Each(func(name string, v int64) {
			p.IntSample("ridserve_algo_events_total",
				[]obs.PromLabel{{Name: "event", Value: name}}, v)
		})
		writeWorkHist(p, "ridserve_cascade_tree_size",
			"Extracted cascade-tree sizes (nodes per tree), across requests.", &s.Algo.Cascade.TreeSize)
		writeWorkHist(p, "ridserve_cascade_tree_depth",
			"Extracted cascade-tree depths, across requests.", &s.Algo.Cascade.TreeDepth)
	}

	p.Header("ridserve_queue_depth", "Jobs waiting in the worker-pool queue.", "gauge")
	p.IntSample("ridserve_queue_depth", nil, int64(s.Queue.Depth))
	p.Header("ridserve_queue_capacity", "Worker-pool queue capacity.", "gauge")
	p.IntSample("ridserve_queue_capacity", nil, int64(s.Queue.Capacity))
	p.Header("ridserve_workers", "Worker-pool size.", "gauge")
	p.IntSample("ridserve_workers", nil, int64(s.Queue.Workers))
	p.Header("ridserve_queue_rejected_total", "Requests shed by queue backpressure.", "counter")
	p.IntSample("ridserve_queue_rejected_total", nil, s.Queue.Rejected)

	p.Header("ridserve_cache_lookups_total", "Graph-cache lookups, by result.", "counter")
	p.IntSample("ridserve_cache_lookups_total", []obs.PromLabel{{Name: "result", Value: "hit"}}, s.Cache.Hits)
	p.IntSample("ridserve_cache_lookups_total", []obs.PromLabel{{Name: "result", Value: "miss"}}, s.Cache.Misses)
	p.Header("ridserve_cache_size", "Networks currently cached.", "gauge")
	p.IntSample("ridserve_cache_size", nil, int64(s.Cache.Size))
	p.Header("ridserve_cache_capacity", "Graph-cache capacity.", "gauge")
	p.IntSample("ridserve_cache_capacity", nil, int64(s.Cache.Capacity))

	if sess := s.Sessions; sess != nil {
		p.Header("ridserve_sessions_active", "Live (non-expired) ingest sessions.", "gauge")
		p.IntSample("ridserve_sessions_active", nil, int64(sess.Active))
		p.Header("ridserve_sessions_evicted_total", "Ingest sessions evicted by idle TTL.", "counter")
		p.IntSample("ridserve_sessions_evicted_total", nil, sess.Evicted)
		p.Header("ridserve_sessions_rejected_total", "Session creations refused at capacity.", "counter")
		p.IntSample("ridserve_sessions_rejected_total", nil, sess.Rejected)
	}

	if slo := s.SLO; slo != nil {
		p.Header("ridserve_slo_target", "Configured per-route availability objective.", "gauge")
		p.Sample("ridserve_slo_target", nil, slo.Target)
		p.Header("ridserve_slo_latency_objective_seconds", "Configured per-route latency objective.", "gauge")
		p.Sample("ridserve_slo_latency_objective_seconds", nil, float64(slo.LatencyObjectiveMS)/1000)
		if len(slo.Routes) > 0 {
			p.Header("ridserve_slo_burn_rate",
				"Error-budget burn rate by route, window and objective (1 = spending the whole budget over the SLO period).",
				"gauge")
			for _, route := range slo.Routes {
				for _, win := range route.Windows {
					p.Sample("ridserve_slo_burn_rate", []obs.PromLabel{
						{Name: "route", Value: route.Route},
						{Name: "window", Value: win.Window},
						{Name: "objective", Value: "availability"},
					}, win.BurnRate)
					p.Sample("ridserve_slo_burn_rate", []obs.PromLabel{
						{Name: "route", Value: route.Route},
						{Name: "window", Value: win.Window},
						{Name: "objective", Value: "latency"},
					}, win.LatencyBurnRate)
				}
			}
			p.Header("ridserve_slo_window_requests", "Requests observed per route and window.", "gauge")
			for _, route := range slo.Routes {
				for _, win := range route.Windows {
					p.IntSample("ridserve_slo_window_requests", []obs.PromLabel{
						{Name: "route", Value: route.Route},
						{Name: "window", Value: win.Window},
					}, win.Requests)
				}
			}
			p.Header("ridserve_slo_window_errors", "Failed requests (5xx or shed) per route and window.", "gauge")
			for _, route := range slo.Routes {
				for _, win := range route.Windows {
					p.IntSample("ridserve_slo_window_errors", []obs.PromLabel{
						{Name: "route", Value: route.Route},
						{Name: "window", Value: win.Window},
					}, win.Errors)
				}
			}
			p.Header("ridserve_slo_error_budget_remaining",
				"Fraction of the 6h error budget left per route (negative = overspent).", "gauge")
			for _, route := range slo.Routes {
				p.Sample("ridserve_slo_error_budget_remaining",
					[]obs.PromLabel{{Name: "route", Value: route.Route}}, route.BudgetRemaining)
			}
		}
	}

	if ex := s.Export; ex != nil {
		p.Header("ridserve_otlp_enqueued_total", "Request telemetry accepted for OTLP export.", "counter")
		p.IntSample("ridserve_otlp_enqueued_total", nil, ex.Enqueued)
		p.Header("ridserve_otlp_sampled_out_total", "Request telemetry dropped by head sampling.", "counter")
		p.IntSample("ridserve_otlp_sampled_out_total", nil, ex.SampledOut)
		p.Header("ridserve_otlp_dropped_queue_total", "Request telemetry dropped on a full export queue.", "counter")
		p.IntSample("ridserve_otlp_dropped_queue_total", nil, ex.DroppedQueue)
		p.Header("ridserve_otlp_dropped_send_total", "Request telemetry dropped after exhausting send retries.", "counter")
		p.IntSample("ridserve_otlp_dropped_send_total", nil, ex.DroppedSend)
		p.Header("ridserve_otlp_retries_total", "OTLP batch send retries.", "counter")
		p.IntSample("ridserve_otlp_retries_total", nil, ex.Retries)
		p.Header("ridserve_otlp_exported_batches_total", "OTLP batches delivered to every configured sink.", "counter")
		p.IntSample("ridserve_otlp_exported_batches_total", nil, ex.ExportedBatches)
		p.Header("ridserve_otlp_exported_spans_total", "OTLP spans delivered to every configured sink.", "counter")
		p.IntSample("ridserve_otlp_exported_spans_total", nil, ex.ExportedSpans)
	}

	if rt := s.Runtime; rt != nil {
		p.Header("ridserve_go_goroutines", "Live goroutines.", "gauge")
		p.IntSample("ridserve_go_goroutines", nil, rt.Goroutines)
		p.Header("ridserve_go_heap_bytes", "Live heap memory occupied by objects.", "gauge")
		p.IntSample("ridserve_go_heap_bytes", nil, rt.HeapBytes)
		p.Header("ridserve_go_alloc_bytes_total", "Cumulative bytes allocated on the heap.", "counter")
		p.IntSample("ridserve_go_alloc_bytes_total", nil, rt.TotalAllocBytes)
		p.Header("ridserve_go_gc_cycles_total", "Completed GC cycles.", "counter")
		p.IntSample("ridserve_go_gc_cycles_total", nil, rt.GCCycles)
		writeQuantiles(p, "ridserve_go_gc_pause_seconds",
			"Stop-the-world GC pause latency quantiles (quantile 1 is the max).", rt.GCPause)
		writeQuantiles(p, "ridserve_go_sched_latency_seconds",
			"Time goroutines spend runnable before running, as quantiles (quantile 1 is the max).", rt.SchedLatency)
	}

	if pr := s.Profiling; pr != nil && pr.Enabled {
		p.Header("ridserve_profile_windows_total", "CPU profile windows captured by the continuous profiler.", "counter")
		p.IntSample("ridserve_profile_windows_total", nil, int64(pr.WindowsCaptured))
		p.Header("ridserve_profile_windows_skipped_total", "Profile windows skipped because capture could not start.", "counter")
		p.IntSample("ridserve_profile_windows_skipped_total", nil, int64(pr.WindowsSkipped))
		p.Header("ridserve_profile_decode_errors_total", "Profile windows dropped by pprof decode failures.", "counter")
		p.IntSample("ridserve_profile_decode_errors_total", nil, int64(pr.DecodeErrors))
		p.Header("ridserve_profile_cpu_seconds_total",
			"Sampled CPU time across all profile windows; the dim/key series split the total by pprof label value.",
			"counter")
		p.Sample("ridserve_profile_cpu_seconds_total",
			[]obs.PromLabel{{Name: "dim", Value: "all"}, {Name: "key", Value: "all"}}, pr.CPUSecondsTotal)
		writeProfileDim(p, "route", pr.CPUSecondsByRoute)
		writeProfileDim(p, "model", pr.CPUSecondsByModel)
		writeProfileDim(p, "stage", pr.CPUSecondsByStage)
		p.Header("ridserve_profile_attributed_ratio",
			"Fraction of sampled CPU time carrying any pprof label.", "gauge")
		p.Sample("ridserve_profile_attributed_ratio", nil, pr.AttributedRatio)
	}
}

// writeProfileDim emits one label dimension's CPU split.
func writeProfileDim(p *obs.PromWriter, dim string, seconds map[string]float64) {
	for _, key := range obs.SortedKeys(seconds) {
		p.Sample("ridserve_profile_cpu_seconds_total",
			[]obs.PromLabel{{Name: "dim", Value: dim}, {Name: "key", Value: key}}, seconds[key])
	}
}

// writeWorkHist renders one obs.WorkHist as a Prometheus histogram family.
// Skipped entirely while empty.
func writeWorkHist(p *obs.PromWriter, name, help string, h *obs.WorkHist) {
	count := h.Count()
	if count == 0 {
		return
	}
	bounds := make([]float64, len(obs.WorkHistBounds))
	for i, b := range obs.WorkHistBounds {
		bounds[i] = float64(b)
	}
	p.Header(name, help, "histogram")
	p.Histogram(name, nil, bounds, h.Cumulative(), float64(h.Sum), count)
}

// writeQuantiles renders a runtime quantile summary as a gauge family
// labelled by quantile — the exposition stays a pure snapshot function, so
// the summary type (which implies cumulative _sum/_count series) is not
// used. Skipped when the runtime didn't expose the source histogram.
func writeQuantiles(p *obs.PromWriter, name, help string, q *obs.QuantileSummary) {
	if q == nil {
		return
	}
	p.Header(name, help, "gauge")
	for _, s := range []struct {
		q string
		v float64
	}{{"0.5", q.P50}, {"0.9", q.P90}, {"0.99", q.P99}, {"1", q.Max}} {
		p.Sample(name, []obs.PromLabel{{Name: "quantile", Value: s.q}}, s.v)
	}
}

// writeLatencyFamily renders one histogram family from the snapshot's
// latency map, stripping prefix off each label for the exposed label
// value. Skips the header when the family is empty.
func writeLatencyFamily(p *obs.PromWriter, name, help, labelName string, labels []string, s *Snapshot, prefix string) {
	if len(labels) == 0 {
		return
	}
	p.Header(name, help, "histogram")
	for _, label := range labels {
		h := s.LatencyMS[label]
		bounds := make([]float64, len(h.BoundsMS))
		for i, ms := range h.BoundsMS {
			bounds[i] = ms / 1000
		}
		var exemplars []obs.PromExemplar
		for i, e := range h.Exemplars {
			if e.TraceID == "" {
				continue
			}
			if exemplars == nil {
				exemplars = make([]obs.PromExemplar, len(h.Exemplars))
			}
			exemplars[i] = obs.PromExemplar{
				Labels: []obs.PromLabel{{Name: "trace_id", Value: e.TraceID}},
				Value:  e.ValueMS / 1000,
				TS:     e.TS,
			}
		}
		p.HistogramEx(name,
			[]obs.PromLabel{{Name: labelName, Value: strings.TrimPrefix(label, prefix)}},
			bounds, h.Buckets, h.SumMS/1000, h.Count, exemplars)
	}
}
