package server

import (
	"fmt"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusConformance generates mixed traffic (detect, simulate, a
// client error) and runs a strict text-format (version 0.0.4) parser over
// the complete /metrics?format=prometheus exposition: HELP/TYPE pairing
// and ordering, family grouping, metric/label name alphabets, label-value
// escaping, duplicate series, histogram le-ordering, bucket monotonicity,
// the mandatory +Inf bucket and its agreement with _count.
func TestPrometheusConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 51, 200, 1200, 4)
	if resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Beta: 0.3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("detect status = %d, body %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts, "/v1/simulate", SimulateRequest{GraphHash: tr.NetworkHash(), Initiators: []int{0}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status = %d, body %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Detector: "nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad detector status = %d, want 400", resp.StatusCode)
	}
	// Session traffic so the session gauges and a second SLO route appear.
	if resp, body := postJSON(t, ts, "/v1/sessions", SessionRequest{GraphHash: tr.NetworkHash(), Beta: 0.3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("session create status = %d, body %s", resp.StatusCode, body)
	}

	resp, body := getBody(t, ts, "/metrics?format=prometheus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	text := string(body)
	checkPromConformance(t, text)

	// The tentpole families must actually be present in live output.
	for _, want := range []string{
		`ridserve_algo_events_total{event="arbor_tarjan_solves"}`,
		`ridserve_algo_events_total{event="isomit_dp_cells"}`,
		`ridserve_algo_events_total{event="diffusion_runs"}`,
		`ridserve_cascade_tree_size_bucket{le="+Inf"}`,
		`ridserve_cascade_tree_depth_count`,
		"ridserve_go_goroutines ",
		"ridserve_go_heap_bytes ",
		"ridserve_go_gc_cycles_total ",
		"ridserve_sessions_active ",
		"ridserve_sessions_evicted_total ",
		"ridserve_sessions_rejected_total ",
		"ridserve_slo_target ",
		"ridserve_slo_latency_objective_seconds ",
		`ridserve_slo_burn_rate{route="detect",window="5m",objective="availability"}`,
		`ridserve_slo_burn_rate{route="detect",window="6h",objective="latency"}`,
		`ridserve_slo_burn_rate{route="session_create",window="1h",objective="availability"}`,
		`ridserve_slo_window_requests{route="detect",window="5m"}`,
		`ridserve_slo_window_errors{route="detect",window="30m"}`,
		`ridserve_slo_error_budget_remaining{route="detect"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPrometheusExporterFamilies runs the strict parser again with the OTLP
// exporter wired in, which adds the ridserve_otlp_* counter families to the
// exposition.
func TestPrometheusExporterFamilies(t *testing.T) {
	ts, exp, _ := newTracedServer(t, 1)
	tr := sampleTrace(t, 52, 150, 700, 3)
	if resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Beta: 0.3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("detect status = %d, body %s", resp.StatusCode, body)
	}
	resp, body := getBody(t, ts, "/metrics?format=prometheus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	text := string(body)
	checkPromConformance(t, text)
	for _, want := range []string{
		"ridserve_otlp_enqueued_total ",
		"ridserve_otlp_sampled_out_total ",
		"ridserve_otlp_dropped_queue_total ",
		"ridserve_otlp_dropped_send_total ",
		"ridserve_otlp_retries_total ",
		"ridserve_otlp_exported_batches_total ",
		"ridserve_otlp_exported_spans_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	exp.Close()
}

var (
	promMetricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSeries is one parsed sample line.
type promSeries struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

// checkPromConformance parses an exposition strictly, failing the test on
// any formal violation.
func checkPromConformance(t *testing.T, text string) {
	t.Helper()
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	seenSeries := map[string]bool{}
	familyDone := map[string]bool{} // families whose sample block has ended
	lastFamily := ""
	var series []promSeries

	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition does not end with a newline")
	}
	for lineNo, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		where := func(format string, args ...any) {
			t.Errorf("line %d: %s (%q)", lineNo+1, fmt.Sprintf(format, args...), line)
		}
		if line == "" {
			where("empty line")
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promMetricNameRE.MatchString(name) {
				where("malformed HELP")
				continue
			}
			if helpSeen[name] {
				where("duplicate HELP for %s", name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 || !promMetricNameRE.MatchString(fields[0]) {
				where("malformed TYPE")
				continue
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				where("unknown type %q", typ)
			}
			if _, dup := typeSeen[name]; dup {
				where("duplicate TYPE for %s", name)
			}
			if !helpSeen[name] {
				where("TYPE for %s precedes its HELP", name)
			}
			typeSeen[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment, legal
		}

		sr, err := parsePromSample(line)
		if err != nil {
			where("%v", err)
			continue
		}
		series = append(series, sr)
		family := promFamilyOf(sr.name, typeSeen)
		if family == "" {
			where("sample %s has no TYPE header", sr.name)
			continue
		}
		if family != lastFamily {
			if familyDone[family] {
				where("family %s is not contiguous", family)
			}
			if lastFamily != "" {
				familyDone[lastFamily] = true
			}
			lastFamily = family
		}
		key := sr.line[:strings.LastIndex(sr.line, " ")]
		if seenSeries[key] {
			where("duplicate series")
		}
		seenSeries[key] = true
	}

	if checkPromHistograms(t, series, typeSeen) == 0 {
		t.Error("no histogram families in exposition")
	}
}

// parsePromSample parses "name{label="value",...} value" with strict
// escaping rules.
func parsePromSample(line string) (promSeries, error) {
	sr := promSeries{labels: map[string]string{}, line: line}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return sr, fmt.Errorf("no value separator")
	}
	sr.name = line[:i]
	if !promMetricNameRE.MatchString(sr.name) {
		return sr, fmt.Errorf("bad metric name %q", sr.name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return sr, fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return sr, fmt.Errorf("label without '='")
			}
			lname := rest[:eq]
			if !promLabelNameRE.MatchString(lname) {
				return sr, fmt.Errorf("bad label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return sr, fmt.Errorf("unquoted label value for %s", lname)
			}
			val, tail, err := parsePromQuoted(rest)
			if err != nil {
				return sr, fmt.Errorf("label %s: %v", lname, err)
			}
			if _, dup := sr.labels[lname]; dup {
				return sr, fmt.Errorf("duplicate label %s", lname)
			}
			sr.labels[lname] = val
			rest = tail
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	if rest == "" || rest[0] != ' ' {
		return sr, fmt.Errorf("missing space before value")
	}
	valueStr := rest[1:]
	if strings.ContainsRune(valueStr, ' ') {
		// A second field would be a timestamp; this server never emits one.
		return sr, fmt.Errorf("unexpected extra field %q", valueStr)
	}
	v, err := parsePromValue(valueStr)
	if err != nil {
		return sr, err
	}
	sr.value = v
	return sr, nil
}

// parsePromQuoted consumes a double-quoted label value, enforcing that
// backslash only escapes \, " or n and that raw quotes/newlines never
// appear unescaped.
func parsePromQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// promFamilyOf maps a series name to its metric family: itself, or — for
// histogram/summary component series — the base name carrying the TYPE.
func promFamilyOf(name string, typeSeen map[string]string) string {
	if _, ok := typeSeen[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if typ := typeSeen[base]; typ == "histogram" || typ == "summary" {
			return base
		}
	}
	return ""
}

// checkPromHistograms verifies every histogram family: le ascending,
// cumulative buckets, +Inf present and equal to _count, and _sum present.
// Returns how many histogram series groups it saw so callers that expect
// traffic can assert the exposition wasn't empty.
func checkPromHistograms(t *testing.T, series []promSeries, typeSeen map[string]string) int {
	t.Helper()
	type hist struct {
		lastLE    float64
		lastCount float64
		buckets   int
		inf       float64
		hasInf    bool
		sum       bool
		count     float64
		hasCount  bool
	}
	hists := map[string]*hist{}
	keyOf := func(family string, labels map[string]string) string {
		var b strings.Builder
		b.WriteString(family)
		for _, name := range sortedLabelNames(labels) {
			if name == "le" {
				continue
			}
			fmt.Fprintf(&b, "|%s=%s", name, labels[name])
		}
		return b.String()
	}
	get := func(k string) *hist {
		h := hists[k]
		if h == nil {
			h = &hist{lastLE: math.Inf(-1)}
			hists[k] = h
		}
		return h
	}
	for _, sr := range series {
		family := promFamilyOf(sr.name, typeSeen)
		if typeSeen[family] != "histogram" {
			continue
		}
		k := keyOf(family, sr.labels)
		h := get(k)
		switch {
		case strings.HasSuffix(sr.name, "_bucket"):
			leStr, ok := sr.labels["le"]
			if !ok {
				t.Errorf("%s: bucket without le label", sr.line)
				continue
			}
			le, err := parsePromValue(leStr)
			if err != nil {
				t.Errorf("%s: bad le %q", sr.line, leStr)
				continue
			}
			if le <= h.lastLE {
				t.Errorf("%s: le %g not ascending after %g", k, le, h.lastLE)
			}
			if sr.value < h.lastCount {
				t.Errorf("%s: bucket count %g below previous %g (non-cumulative)", k, sr.value, h.lastCount)
			}
			h.lastLE, h.lastCount = le, sr.value
			h.buckets++
			if math.IsInf(le, 1) {
				h.inf, h.hasInf = sr.value, true
			}
		case strings.HasSuffix(sr.name, "_sum"):
			h.sum = true
		case strings.HasSuffix(sr.name, "_count"):
			h.count, h.hasCount = sr.value, true
		}
	}
	for k, h := range hists {
		if h.buckets == 0 {
			t.Errorf("histogram %s has no buckets", k)
			continue
		}
		if !h.hasInf {
			t.Errorf("histogram %s lacks a +Inf bucket", k)
		}
		if !h.sum || !h.hasCount {
			t.Errorf("histogram %s lacks _sum/_count (%v/%v)", k, h.sum, h.hasCount)
		}
		if h.hasInf && h.hasCount && h.inf != h.count {
			t.Errorf("histogram %s: +Inf bucket %g != count %g", k, h.inf, h.count)
		}
	}
	return len(hists)
}

func sortedLabelNames(labels map[string]string) []string {
	names := make([]string, 0, len(labels))
	for name := range labels {
		names = append(names, name)
	}
	// Label order in the exposition is fixed by the writer; sorting here
	// only keys the histogram map deterministically.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
