package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRenderPrometheusGolden locks the exposition format byte-for-byte on
// a hand-built snapshot: deterministic ordering, label escaping (the op
// label carries a quote and a backslash), millisecond→second conversion
// and cumulative le buckets ending at +Inf.
func TestRenderPrometheusGolden(t *testing.T) {
	snap := &Snapshot{
		UptimeS:       12.5,
		UptimeSeconds: 12.5,
		Build:         BuildInfo{GoVersion: "go1.22.0", GOMAXPROCS: 8, NumCPU: 16, GOOS: "linux", GOARCH: "amd64"},
		Requests: map[string]map[string]int64{
			"detect": {"200": 3, "400": 1},
		},
		LatencyMS: map[string]*HistogramSnapshot{
			`detect.RID"w\`: {Count: 3, SumMS: 7.5, BoundsMS: []float64{1, 5}, Buckets: []int64{1, 2, 3}},
			"stage.tree_dp": {Count: 2, SumMS: 3, BoundsMS: []float64{1, 5}, Buckets: []int64{0, 2, 2}},
		},
		Pipeline: map[string]int64{"dp_cells": 42, "trees": 7},
		Queue:    QueueSnapshot{Depth: 1, Capacity: 16, Workers: 4, Rejected: 2},
		Cache:    CacheSnapshot{Hits: 3, Misses: 1, HitRate: 0.75, Size: 1, Capacity: 64},
	}
	var b strings.Builder
	if err := RenderPrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	golden := `# HELP ridserve_uptime_seconds Seconds since the server started.
# TYPE ridserve_uptime_seconds gauge
ridserve_uptime_seconds 12.5
# HELP ridserve_build_info Build metadata; the value is always 1.
# TYPE ridserve_build_info gauge
ridserve_build_info{go_arch="amd64",go_os="linux",go_version="go1.22.0",gomaxprocs="8",num_cpu="16"} 1
# HELP ridserve_requests_total Requests served, by route and status.
# TYPE ridserve_requests_total counter
ridserve_requests_total{route="detect",status="200"} 3
ridserve_requests_total{route="detect",status="400"} 1
# HELP ridserve_latency_seconds Operation latency, by route and detector.
# TYPE ridserve_latency_seconds histogram
ridserve_latency_seconds_bucket{op="detect.RID\"w\\",le="0.001"} 1
ridserve_latency_seconds_bucket{op="detect.RID\"w\\",le="0.005"} 2
ridserve_latency_seconds_bucket{op="detect.RID\"w\\",le="+Inf"} 3
ridserve_latency_seconds_sum{op="detect.RID\"w\\"} 0.0075
ridserve_latency_seconds_count{op="detect.RID\"w\\"} 3
# HELP ridserve_stage_duration_seconds Per-request pipeline stage wall time, by stage.
# TYPE ridserve_stage_duration_seconds histogram
ridserve_stage_duration_seconds_bucket{stage="tree_dp",le="0.001"} 0
ridserve_stage_duration_seconds_bucket{stage="tree_dp",le="0.005"} 2
ridserve_stage_duration_seconds_bucket{stage="tree_dp",le="+Inf"} 2
ridserve_stage_duration_seconds_sum{stage="tree_dp"} 0.003
ridserve_stage_duration_seconds_count{stage="tree_dp"} 2
# HELP ridserve_pipeline_events_total Pipeline work counters accumulated across detects.
# TYPE ridserve_pipeline_events_total counter
ridserve_pipeline_events_total{event="dp_cells"} 42
ridserve_pipeline_events_total{event="trees"} 7
# HELP ridserve_queue_depth Jobs waiting in the worker-pool queue.
# TYPE ridserve_queue_depth gauge
ridserve_queue_depth 1
# HELP ridserve_queue_capacity Worker-pool queue capacity.
# TYPE ridserve_queue_capacity gauge
ridserve_queue_capacity 16
# HELP ridserve_workers Worker-pool size.
# TYPE ridserve_workers gauge
ridserve_workers 4
# HELP ridserve_queue_rejected_total Requests shed by queue backpressure.
# TYPE ridserve_queue_rejected_total counter
ridserve_queue_rejected_total 2
# HELP ridserve_cache_lookups_total Graph-cache lookups, by result.
# TYPE ridserve_cache_lookups_total counter
ridserve_cache_lookups_total{result="hit"} 3
ridserve_cache_lookups_total{result="miss"} 1
# HELP ridserve_cache_size Networks currently cached.
# TYPE ridserve_cache_size gauge
ridserve_cache_size 1
# HELP ridserve_cache_capacity Graph-cache capacity.
# TYPE ridserve_cache_capacity gauge
ridserve_cache_capacity 64
`
	if got := b.String(); got != golden {
		t.Errorf("rendered output diverges from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestMetricsPrometheusEndpoint exercises the live endpoint: after a real
// detect, ?format=prometheus serves valid text format carrying per-stage
// histograms and pipeline counters, every bucket series is cumulative and
// ends at its family count, and an unknown format is rejected.
func TestMetricsPrometheusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 21, 200, 1200, 4)
	if resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Beta: 0.3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("detect status = %d, body %s", resp.StatusCode, body)
	}

	resp, body := getBody(t, ts, "/metrics?format=prometheus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE ridserve_stage_duration_seconds histogram",
		`ridserve_stage_duration_seconds_bucket{stage="tree_dp",le="+Inf"}`,
		`ridserve_requests_total{route="detect",status="200"} 1`,
		`ridserve_pipeline_events_total{event="trees"}`,
		"ridserve_build_info{go_arch=",
		"ridserve_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Every _bucket series must be cumulative within its label set, and the
	// +Inf bucket must equal the family's _count.
	type family struct {
		last   int64
		inf    int64
		hasInf bool
	}
	families := map[string]*family{} // keyed by series name sans le label
	counts := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, valueStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed line %q", line)
		}
		value, err := strconv.ParseInt(valueStr, 10, 64)
		if strings.Contains(name, "_bucket{") {
			if err != nil {
				t.Fatalf("non-integer bucket count in %q", line)
			}
			leAt := strings.LastIndex(name, ",le=")
			if leAt < 0 {
				// Histograms without other labels open with le.
				leAt = strings.LastIndex(name, "{le=")
			}
			if leAt < 0 {
				t.Fatalf("bucket series without le label: %q", line)
			}
			key := name[:leAt]
			f := families[key]
			if f == nil {
				f = &family{}
				families[key] = f
			}
			if value < f.last {
				t.Errorf("non-cumulative buckets in %q: %d after %d", key, value, f.last)
			}
			f.last = value
			if strings.Contains(name, `le="+Inf"`) {
				f.inf, f.hasInf = value, true
			}
		} else if i := strings.Index(name, "_count"); err == nil && i >= 0 {
			counts[name[:i]+"_bucket"+name[i+len("_count"):]] = value
		}
	}
	if len(families) == 0 {
		t.Fatal("no histogram bucket series in exposition")
	}
	for key, f := range families {
		if !f.hasInf {
			t.Errorf("family %q has no +Inf bucket", key)
		}
		if want, ok := counts[key]; ok && f.inf != want {
			t.Errorf("family %q: +Inf bucket %d != count %d", key, f.inf, want)
		}
	}

	// JSON stays the default and carries the new satellite fields.
	resp, body = getBody(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json metrics status = %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.UptimeSeconds <= 0 || snap.UptimeSeconds != snap.UptimeS {
		t.Errorf("uptime_seconds = %g, uptime_s = %g", snap.UptimeSeconds, snap.UptimeS)
	}
	if snap.Build.GoVersion == "" || snap.Build.GOMAXPROCS < 1 || snap.Build.NumCPU < 1 ||
		snap.Build.GOOS == "" || snap.Build.GOARCH == "" {
		t.Errorf("build info not populated: %+v", snap.Build)
	}
	if snap.Profiling == nil || snap.Profiling.Enabled {
		t.Errorf("profiling snapshot = %+v, want present and disabled", snap.Profiling)
	}
	if snap.Pipeline["trees"] < 1 {
		t.Errorf("pipeline counters not merged: %v", snap.Pipeline)
	}

	resp, body = getBody(t, ts, "/metrics?format=xml")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status = %d, body %s", resp.StatusCode, body)
	}
}

// TestDetectStageTimingsAndTraceID asserts the detect response's stage
// breakdown is present, disjoint (sums to at most the reported elapsed
// time) and correlated to the response's trace ID, which honors an
// inbound X-Trace-Id.
func TestDetectStageTimingsAndTraceID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 22, 200, 1200, 4)
	payload, err := json.Marshal(DetectRequest{Trace: tr, Beta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "cafe0123cafe0123")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// A legacy 16-hex X-Trace-Id is mapped deterministically onto a valid
	// 32-hex W3C trace id (it cannot round-trip into traceparent as-is).
	mapped := obs.TraceIDFromLegacy("cafe0123cafe0123")
	if got := resp.Header.Get("X-Trace-Id"); got != mapped {
		t.Errorf("X-Trace-Id = %q, want the inbound ID mapped to %q", got, mapped)
	}
	var det DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&det); err != nil {
		t.Fatal(err)
	}
	if det.TraceID != mapped {
		t.Errorf("trace_id = %q, want the request's (%q)", det.TraceID, mapped)
	}
	if len(det.StageTimings) == 0 {
		t.Fatal("no stage_timings in response")
	}
	for _, stage := range []string{"graph_build", "snapshot", "components", "arborescence", "tree_build", "tree_dp"} {
		if _, ok := det.StageTimings[stage]; !ok {
			t.Errorf("stage_timings missing %q: %v", stage, det.StageTimings)
		}
	}
	var sum float64
	for stage, ms := range det.StageTimings {
		if ms < 0 {
			t.Errorf("stage %q has negative duration %g", stage, ms)
		}
		sum += ms
	}
	if sum > det.ElapsedMS {
		t.Errorf("stage timings sum to %gms > elapsed %gms; stages overlap", sum, det.ElapsedMS)
	}

	// Without an inbound header the server mints a fresh W3C trace id.
	resp2, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Beta: 0.3})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp2.StatusCode, body)
	}
	minted := resp2.Header.Get("X-Trace-Id")
	if !obs.ValidTraceID(minted) {
		t.Errorf("minted trace ID %q, want 32 lowercase hex chars", minted)
	}
}

// TestDebugHandler checks the profiling mux serves pprof and expvar.
func TestDebugHandler(t *testing.T) {
	ts := httptest.NewServer(DebugHandler())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}
