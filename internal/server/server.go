// Package server is the serving subsystem: rumor-initiator detection and
// MFC simulation as an HTTP service over the internal/trace wire format.
//
// Architecture: every compute endpoint routes through one bounded worker
// pool (sized to GOMAXPROCS) with a fixed-depth queue — a full queue sheds
// load with 429 + Retry-After instead of spawning unbounded goroutines.
// Per-request deadlines propagate via context.Context into the detector
// hot loops (core.ContextDetector), so a timed-out request stops burning
// CPU mid-solve. Built diffusion networks are LRU-cached by content hash
// (trace.NetworkHash), letting repeat queries on the same network skip
// edge validation and adjacency construction. An in-process registry
// tracks request counts, per-detector latency histograms, queue depth and
// cache hit rate, served as JSON on /metrics. Shutdown drains: in-flight
// HTTP requests finish, then queued jobs run to completion.
package server

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/profiling"
)

// Config parameterizes the server. The zero value serves on :8080 with
// GOMAXPROCS workers.
type Config struct {
	// Addr is the listen address; empty defaults to ":8080".
	Addr string
	// Workers is the worker-pool size; zero defaults to GOMAXPROCS.
	Workers int
	// QueueDepth is the job-queue capacity; zero defaults to 4×Workers.
	QueueDepth int
	// CacheSize is the graph-cache capacity; zero defaults to 64.
	CacheSize int
	// DefaultTimeout bounds each compute request; zero defaults to 30s.
	// A request's timeout_ms can tighten it but never extend it.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps request bodies; zero defaults to 32 MiB.
	MaxBodyBytes int64
	// RetryAfter is the Retry-After value sent with 429s; zero defaults
	// to 1s.
	RetryAfter time.Duration
	// Parallelism is the per-request pipeline parallelism handed to the
	// detectors (core.RIDConfig.Parallelism): how many goroutines one
	// detection fans component extraction and per-tree inference across.
	// Zero means GOMAXPROCS. Distinct from Workers, which bounds how many
	// requests compute at once; total concurrency is roughly
	// Workers × Parallelism, so deployments co-tuning both typically set
	// Parallelism to 1 and scale Workers, or the reverse.
	Parallelism int
	// FlightSize is the flight recorder's capacity: the last FlightSize
	// completed compute requests (plus a smaller pinned ring of slow or
	// failed ones) are retained for /debug/requests. Zero defaults to
	// obs.DefaultFlightSize; negative disables the recorder.
	FlightSize int
	// SlowThreshold is the latency at or above which a request is pinned in
	// the flight recorder past normal eviction; zero defaults to
	// obs.DefaultSlowThreshold.
	SlowThreshold time.Duration
	// MaxSessions caps live ingest sessions (POST /v1/sessions); creating
	// past the cap answers 429 + Retry-After. Zero defaults to 64.
	MaxSessions int
	// SessionTTL is the idle lifetime of an ingest session: one untouched
	// for longer is evicted lazily. Zero defaults to 15 minutes.
	SessionTTL time.Duration
	// Exporter, when non-nil, receives every completed request's telemetry
	// (tail-sampled) for OTLP/JSON export. The server takes ownership:
	// Shutdown flushes and closes it. Constructed by the caller so sink
	// errors (bad endpoint, unwritable file) surface at startup.
	Exporter *obs.Exporter
	// SLOTarget is the per-route availability objective in (0,1); zero
	// defaults to 0.99.
	SLOTarget float64
	// SLOLatency is the per-route latency objective; zero defaults to
	// 500ms.
	SLOLatency time.Duration
	// Snapshots, when non-nil, persists built networks as CSR snapshot
	// files keyed by content hash, letting restarts and replicas warm-load
	// graphs (zero-copy mmap) instead of rebuilding them from wire traces.
	// Constructed by the caller (NewSnapshotStore) so directory errors
	// surface at startup. Nil disables persistence.
	Snapshots *SnapshotStore
	// Profiler, when non-nil, is the continuous CPU profiler
	// (profiling.NewProfiler). The server takes ownership: New starts the
	// capture loop, Shutdown stops it, and its aggregates surface on
	// /debug/hotspots and /metrics. Nil disables continuous profiling; the
	// pprof label attribution is always on.
	Profiler *profiling.Profiler
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.FlightSize == 0 {
		c.FlightSize = obs.DefaultFlightSize
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = obs.DefaultSlowThreshold
	}
	return c
}

// Server is the detection service. Create one with New, serve with
// ListenAndServe (or mount Handler in a test server), stop with Shutdown.
type Server struct {
	cfg       Config
	pool      *Pool
	cache     *GraphCache
	snapshots *SnapshotStore
	reg       *Registry
	flight    *obs.FlightRecorder
	sessions  *ingest.Manager
	slo       *obs.SLOTracker
	exporter  *obs.Exporter
	profiler  *profiling.Profiler
	mux       *http.ServeMux
	http      *http.Server
}

// New wires a server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		pool:      NewPool(cfg.Workers, cfg.QueueDepth),
		cache:     NewGraphCache(cfg.CacheSize),
		snapshots: cfg.Snapshots,
		reg:       NewRegistry(),
		sessions:  ingest.NewManager(ingest.ManagerConfig{MaxSessions: cfg.MaxSessions, TTL: cfg.SessionTTL}),
		slo:       obs.NewSLOTracker(obs.SLOConfig{Target: cfg.SLOTarget, Latency: cfg.SLOLatency}),
		exporter:  cfg.Exporter,
		profiler:  cfg.Profiler,
		mux:       http.NewServeMux(),
	}
	if cfg.FlightSize > 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightSize, cfg.SlowThreshold)
	}
	s.profiler.Start()
	s.mux.HandleFunc("POST /v1/detect", s.instrument("detect", s.handleDetect))
	s.mux.HandleFunc("POST /v1/detect/batch", s.instrument("detect_batch", s.handleDetectBatch))
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/sessions", s.instrument("session_create", s.handleSessionCreate))
	s.mux.HandleFunc("POST /v1/sessions/{id}/events", s.instrument("session_events", s.handleSessionEvents))
	s.mux.HandleFunc("GET /v1/sessions/{id}/detect", s.instrument("session_detect", s.handleSessionDetect))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("session_delete", s.handleSessionDelete))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /debug/requests", s.instrument("debug_requests", s.handleDebugRequests))
	s.mux.HandleFunc("GET /debug/slo", s.instrument("debug_slo", s.handleDebugSLO))
	s.mux.HandleFunc("GET /debug/hotspots", s.instrument("debug_hotspots", s.handleDebugHotspots))
	s.http = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler exposes the route table (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (for embedding the server elsewhere).
func (s *Server) Metrics() *Registry { return s.reg }

// Flight exposes the flight recorder, nil when disabled (FlightSize < 0).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// DebugHandler returns the package-level profiling mux (net/http/pprof,
// expvar) extended with this server's flight-recorder view at
// /debug/requests, so a deployment running a separate debug listener
// (-debug-addr) gets request introspection there too. The view is also on
// the service mux — unlike pprof, it only exposes request metadata.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", DebugHandler())
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/slo", s.handleDebugSLO)
	mux.HandleFunc("GET /debug/hotspots", s.handleDebugHotspots)
	return mux
}

// ListenAndServe blocks serving on the configured address until Shutdown.
func (s *Server) ListenAndServe() error {
	err := s.http.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the server: stop accepting connections, wait for
// in-flight requests up to ctx's deadline, let the worker pool finish
// every queued job, then flush and close the span exporter so telemetry
// for the drained requests is not lost.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.pool.Close()
	s.exporter.Close()
	s.profiler.Stop()
	return err
}

// statusRecorder captures the response status for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// instrument wraps a handler with request counting, route latency, W3C
// trace-context propagation (inbound traceparent honored, legacy
// X-Trace-Id mapped onto a deterministic valid trace id, responses carry
// both headers), SLO accounting, tail-sampled OTLP span export, and a
// structured access log. The trace context and a mutable telemetry slot
// travel via context so handlers hand their pipeline Recorder and span
// links back up for export after the response is written.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tc, parentSpanID := s.inboundTrace(r)
		ctx := obs.WithTraceContext(r.Context(), tc)
		ctx = obs.WithTraceID(ctx, tc.TraceID)
		slot := &obs.Telemetry{}
		ctx = obs.WithTelemetry(ctx, slot)
		// Response headers go out before the handler writes: the caller
		// gets this hop's span id as its parent for any follow-up, and the
		// legacy header keeps pre-W3C clients correlating.
		w.Header().Set("traceparent", tc.Traceparent())
		w.Header().Set("X-Trace-Id", tc.TraceID)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		// The whole handler — JSON decode and encode included, not just the
		// pooled compute — runs under the route pprof label, so nearly every
		// CPU sample a request costs is attributable to its route.
		profiling.Do(ctx, func(ctx context.Context) {
			h(rec, r.WithContext(ctx))
		}, profiling.LabelRoute, route)
		elapsed := time.Since(start)
		s.reg.CountRequest(route, rec.status)
		s.reg.ObserveExemplar("route."+route, elapsed, tc.TraceID)
		s.slo.Record(route, rec.status, elapsed)
		if s.exporter != nil {
			pipeRec, links, detail := slot.Snapshot()
			s.exporter.Enqueue(&obs.RequestTelemetry{
				Trace:        tc,
				ParentSpanID: parentSpanID,
				Route:        route,
				Detail:       detail,
				Start:        start,
				End:          start.Add(elapsed),
				HTTPStatus:   rec.status,
				Rec:          pipeRec,
				Links:        links,
			})
		}
		slog.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("trace_id", tc.TraceID),
			slog.String("route", route),
			slog.String("method", r.Method),
			slog.Int("status", rec.status),
			slog.Duration("elapsed", elapsed))
	}
}

// recordFlight publishes a flight record, first stamping it with the
// continuous-profiler window (if any) that overlapped the request, so a
// slow entry in /debug/requests links straight to the CPU breakdown in
// /debug/hotspots captured while it ran.
func (s *Server) recordFlight(fr obs.FlightRecord) {
	end := fr.Start.Add(time.Duration(fr.ElapsedMS * float64(time.Millisecond)))
	if seq, ok := s.profiler.WindowFor(fr.Start, end); ok {
		fr.ProfileWindow = seq
	}
	s.flight.Record(fr)
}

// inboundTrace resolves the request's trace context, preferring a W3C
// traceparent (malformed tracestate is dropped without invalidating it,
// per spec), then a legacy X-Trace-Id mapped deterministically onto a
// valid trace id, then a freshly minted root. In every case this process
// mints its own span id; the remote parent's span id is returned
// separately for the exported span's parentSpanId. The sampled flag ORs in
// the exporter's deterministic head-sampling decision so the flag the
// caller reads back agrees with what the fleet actually exports.
func (s *Server) inboundTrace(r *http.Request) (obs.TraceContext, string) {
	var tc obs.TraceContext
	parentSpanID := ""
	if parsed, err := obs.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		tc = parsed
		parentSpanID = parsed.SpanID
		if ts, err := obs.ParseTraceState(r.Header.Get("tracestate")); err == nil {
			tc.TraceState = ts
		}
	} else if legacy := legacyTraceToken(r.Header.Get("X-Trace-Id")); legacy != "" {
		tc = obs.TraceContext{TraceID: obs.TraceIDFromLegacy(legacy), Flags: obs.FlagSampled}
	} else {
		tc = obs.NewTraceContext()
	}
	tc.SpanID = obs.NewSpanID()
	if s.exporter.Sampled(tc.TraceID) {
		tc.Flags |= obs.FlagSampled
	}
	return tc, parentSpanID
}

// legacyTraceToken accepts a pre-W3C client trace token only when it is
// 1–64 bytes of [0-9A-Za-z._-]; anything else (empty, oversized, control
// characters, log-injection attempts) returns "". The accepted alphabet is
// safe verbatim in logs, HTML, URLs and Prometheus label values.
func legacyTraceToken(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// poolResult is what a pooled job hands back to its waiting handler.
type poolResult struct {
	value any
	err   error
}

// drainGrace is how long runPooled waits for a running job to observe its
// cancelled context and hand back a result before answering with a bare
// timeout error. The detector hot loops poll the context every few
// thousand iterations, so a well-behaved job returns within microseconds;
// the grace exists so handlers that deliver partial results on deadline
// (the batch path) reach the client instead of a generic 504.
const drainGrace = 500 * time.Millisecond

// runPooled executes fn on the worker pool under the request deadline and
// writes the outcome. A full queue is answered immediately with 429 +
// Retry-After. A deadline that expires while the job is still queued is
// answered with 504; one that expires while the job is running gives fn a
// short grace to return a result of its own (a ctx error for single
// detects — still a 504 — or a partial batch response), and the context
// handed to fn aborts the underlying solve so the worker frees up
// promptly either way.
func (s *Server) runPooled(w http.ResponseWriter, r *http.Request, timeoutMS int, fn func(context.Context) (any, error)) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	done := make(chan poolResult, 1)
	var started atomic.Bool
	accepted := s.pool.TrySubmit(func() {
		// The client may be gone by the time this job is dequeued; the
		// cancelled context makes fn return immediately in that case.
		started.Store(true)
		// Pool goroutines are long-lived, so the handler goroutine's pprof
		// labels don't reach them by inheritance; re-apply the request's
		// label set (carried in ctx) for the job's duration.
		var v any
		var err error
		profiling.Do(ctx, func(ctx context.Context) {
			v, err = fn(ctx)
		})
		done <- poolResult{value: v, err: err}
	})
	if !accepted {
		s.reg.CountRejected()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "queue full; retry later"})
		return
	}
	select {
	case res := <-done:
		writePoolResult(w, res)
	case <-ctx.Done():
		if started.Load() {
			select {
			case res := <-done:
				writePoolResult(w, res)
				return
			case <-time.After(drainGrace):
			}
		}
		writeError(w, ctx.Err())
	}
}

func writePoolResult(w http.ResponseWriter, res poolResult) {
	if res.err != nil {
		writeError(w, res.err)
		return
	}
	writeJSON(w, http.StatusOK, res.value)
}
