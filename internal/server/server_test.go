package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cascade"
	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/sgraph"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// sampleTrace simulates an MFC outbreak on a synthetic signed network and
// wraps it as a wire-format instance with ground truth.
func sampleTrace(tb testing.TB, seed uint64, nodes, edges, nSeeds int) *trace.Trace {
	tb.Helper()
	rng := xrand.New(seed)
	g, err := gen.PreferentialAttachment(gen.Config{Nodes: nodes, Edges: edges, PositiveRatio: 0.8}, rng)
	if err != nil {
		tb.Fatal(err)
	}
	dif := sgraph.WeightByJaccard(g, 0.1, rng).Reverse()
	seeds, states, err := diffusion.SampleInitiators(dif.NumNodes(), nSeeds, 0.5, rng)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := diffusion.MFC(dif, seeds, states, diffusion.MFCConfig{Alpha: 3}, rng)
	if err != nil {
		tb.Fatal(err)
	}
	snap, err := cascade.NewSnapshot(dif, c.States)
	if err != nil {
		tb.Fatal(err)
	}
	return trace.FromSnapshot("test", snap, seeds, states)
}

func postJSON(tb testing.TB, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	tb.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		tb.Fatal(err)
	}
	return resp, buf.Bytes()
}

func newTestServer(tb testing.TB, cfg Config) (*Server, *httptest.Server) {
	tb.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

func TestDetectRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 1, 300, 1800, 6)

	var first DetectResponse
	resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Detector: "rid", Beta: 0.3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.Initiators) == 0 {
		t.Fatal("no initiators in response")
	}
	if first.Cache != "miss" {
		t.Errorf("first query cache = %q, want miss", first.Cache)
	}
	if first.GraphHash != tr.NetworkHash() {
		t.Errorf("graph hash mismatch")
	}
	if first.Truth == nil || first.Truth.F1 <= 0 {
		t.Errorf("expected a positive ground-truth F1, got %+v", first.Truth)
	}
	for i := 1; i < len(first.Initiators); i++ {
		if first.Initiators[i].Score > first.Initiators[i-1].Score {
			t.Fatalf("initiators not ranked by score at %d", i)
		}
	}
	for _, ri := range first.Initiators {
		if ri.State != 1 && ri.State != -1 {
			t.Fatalf("RID should infer a concrete state, got %d", ri.State)
		}
	}

	// Repeat query on the same network: the graph cache must hit.
	var second DetectResponse
	resp, body = postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Beta: 0.1, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" {
		t.Errorf("repeat query cache = %q, want hit", second.Cache)
	}
	if len(second.Initiators) > 3 {
		t.Errorf("k=3 returned %d initiators", len(second.Initiators))
	}

	// The metrics endpoint reports what just happened.
	mresp, mbody := getBody(t, ts, "/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mresp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests["detect"]["200"] != 2 {
		t.Errorf("detect 200 count = %d, want 2", snap.Requests["detect"]["200"])
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 || snap.Cache.Size != 1 {
		t.Errorf("cache stats = %+v", snap.Cache)
	}
	if snap.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", snap.Cache.HitRate)
	}
	if snap.Queue.Capacity == 0 || snap.Queue.Workers == 0 {
		t.Errorf("queue gauges missing: %+v", snap.Queue)
	}
	found := false
	for label, h := range snap.LatencyMS {
		if h.Count > 0 && len(label) > 7 && label[:7] == "detect." {
			found = true
		}
	}
	if !found {
		t.Errorf("no per-detector latency histogram in %v", keys(snap.LatencyMS))
	}
	_ = s
}

func getBody(tb testing.TB, ts *httptest.Server, path string) (*http.Response, []byte) {
	tb.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		tb.Fatal(err)
	}
	return resp, buf.Bytes()
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDetectBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 2, 50, 200, 2)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"broken JSON", `{broken`, http.StatusBadRequest},
		{"unknown field", `{"nope": 1}`, http.StatusBadRequest},
		{"missing trace", `{}`, http.StatusBadRequest},
		{"bad version", `{"trace": {"version": 9, "nodes": 0, "edges": [], "observed": []}}`, http.StatusBadRequest},
		{"state/node mismatch", `{"trace": {"version": 1, "nodes": 2, "edges": [], "observed": [1]}}`, http.StatusBadRequest},
		{"self-loop edge", `{"trace": {"version": 1, "nodes": 2, "edges": [{"from":0,"to":0,"sign":1,"weight":0.5}], "observed": [1,0]}}`, http.StatusBadRequest},
		{"duplicate edge", `{"trace": {"version": 1, "nodes": 2, "edges": [{"from":0,"to":1,"sign":1,"weight":0.5},{"from":0,"to":1,"sign":-1,"weight":0.2}], "observed": [1,0]}}`, http.StatusBadRequest},
		{"negative k", `{"trace": {"version": 1, "nodes": 1, "edges": [], "observed": [1]}, "k": -1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/detect", "application/json", bytes.NewBufferString(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var e errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("non-JSON error body: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (error %q)", resp.StatusCode, tc.want, e.Error)
			}
			if e.Error == "" {
				t.Fatal("empty error message")
			}
		})
	}

	// Unknown detector name.
	resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Detector: "psychic"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown detector: status = %d, body %s", resp.StatusCode, body)
	}
}

// holdWorkers occupies every worker and fills the queue with blocking
// jobs; the returned release function unblocks them all.
func holdWorkers(t *testing.T, s *Server, jobs int) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	started := make(chan struct{}, jobs)
	for i := 0; i < jobs; i++ {
		// A just-submitted job may not have been dequeued by a worker yet,
		// so the queue can be momentarily full; retry briefly.
		deadline := time.Now().Add(2 * time.Second)
		for !s.pool.TrySubmit(func() { started <- struct{}{}; <-gate }) {
			if time.Now().After(deadline) {
				t.Fatalf("could not submit blocking job %d", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Wait until the workers demonstrably hold their share and the queue
	// has absorbed the rest, so callers see a deterministic pool state.
	running := jobs
	if w := s.pool.Workers(); w < running {
		running = w
	}
	for i := 0; i < running; i++ {
		select {
		case <-started:
		case <-time.After(2 * time.Second):
			t.Fatalf("blocking job %d never started", i)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.pool.Depth() < jobs-running {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", s.pool.Depth())
		}
		time.Sleep(time.Millisecond)
	}
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

func TestDetect429UnderSaturation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := holdWorkers(t, s, 2) // 1 running + 1 queued = saturated
	defer release()

	tr := sampleTrace(t, 3, 50, 200, 2)
	resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("429 body not a JSON error: %s", body)
	}

	release()
	// After drain the same request succeeds.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, body = postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never recovered: %d %s", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, mbody := getBody(t, ts, "/metrics")
	var snap Snapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Queue.Rejected < 1 {
		t.Errorf("rejected counter = %d, want >= 1", snap.Queue.Rejected)
	}
	if snap.Requests["detect"]["429"] < 1 {
		t.Errorf("no 429 in request counts: %v", snap.Requests)
	}
}

func TestDetectDeadlineWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	release := holdWorkers(t, s, 1) // worker busy, queue open
	defer release()

	tr := sampleTrace(t, 4, 50, 200, 2)
	resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, TimeoutMS: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
}

func TestGracefulShutdownDrainsQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	release := holdWorkers(t, s, 1)

	// A request sitting in the queue behind the held worker...
	tr := sampleTrace(t, 5, 50, 200, 2)
	type result struct {
		status int
		body   []byte
	}
	got := make(chan result, 1)
	go func() {
		resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr})
		got <- result{resp.StatusCode, body}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.pool.Depth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// ...must still complete when shutdown starts before it runs.
	shutdownDone := make(chan error, 1)
	go func() {
		release()
		shutdownDone <- s.Shutdown(context.Background())
	}()
	select {
	case r := <-got:
		if r.status != http.StatusOK {
			t.Fatalf("queued request got %d during shutdown: %s", r.status, r.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never completed")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown never returned")
	}
	if s.pool.TrySubmit(func() {}) {
		t.Error("pool accepted work after shutdown")
	}
}

func TestSimulateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 6, 200, 1200, 4)

	var sim SimulateResponse
	resp, body := postJSON(t, ts, "/v1/simulate", SimulateRequest{
		Trace: tr, Initiators: []int{0, 5}, States: []int8{1, -1}, Seed: 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Infected < 2 {
		t.Errorf("infected = %d, want >= 2 (the initiators)", sim.Infected)
	}
	if len(sim.Observed) != tr.Nodes {
		t.Errorf("observed length = %d, want %d", len(sim.Observed), tr.Nodes)
	}
	if len(sim.SpreadCurve) == 0 || sim.SpreadCurve[0] != 2 {
		t.Errorf("spread curve should start at the 2 initiators: %v", sim.SpreadCurve)
	}

	// Re-simulate on the cached graph by hash only.
	var sim2 SimulateResponse
	resp, body = postJSON(t, ts, "/v1/simulate", SimulateRequest{
		GraphHash: sim.GraphHash, Initiators: []int{1}, Seed: 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sim2); err != nil {
		t.Fatal(err)
	}
	if sim2.Cache != "hit" {
		t.Errorf("hash-only simulate cache = %q, want hit", sim2.Cache)
	}

	// The simulated snapshot feeds straight back into /v1/detect.
	detTrace := &trace.Trace{Version: trace.Version, Nodes: tr.Nodes, Edges: tr.Edges, Observed: sim.Observed}
	resp, body = postJSON(t, ts, "/v1/detect", DetectRequest{Trace: detTrace})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate->detect status = %d, body %s", resp.StatusCode, body)
	}
	var det DetectResponse
	if err := json.Unmarshal(body, &det); err != nil {
		t.Fatal(err)
	}
	if det.Cache != "hit" {
		t.Errorf("simulate->detect should reuse the cached graph, got %q", det.Cache)
	}
}

func TestSimulateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 7, 50, 200, 2)

	// Unknown graph hash.
	resp, _ := postJSON(t, ts, "/v1/simulate", SimulateRequest{GraphHash: "deadbeef", Initiators: []int{0}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown hash: status = %d, want 404", resp.StatusCode)
	}
	// Neither trace nor hash.
	resp, _ = postJSON(t, ts, "/v1/simulate", SimulateRequest{Initiators: []int{0}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing source: status = %d, want 400", resp.StatusCode)
	}
	// Both trace and hash.
	resp, _ = postJSON(t, ts, "/v1/simulate", SimulateRequest{Trace: tr, GraphHash: "x", Initiators: []int{0}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("double source: status = %d, want 400", resp.StatusCode)
	}
	// No initiators.
	resp, _ = postJSON(t, ts, "/v1/simulate", SimulateRequest{Trace: tr})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no initiators: status = %d, want 400", resp.StatusCode)
	}
	// Misaligned states.
	resp, _ = postJSON(t, ts, "/v1/simulate", SimulateRequest{Trace: tr, Initiators: []int{0, 1}, States: []int8{1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("misaligned states: status = %d, want 400", resp.StatusCode)
	}
	// Non-concrete state code.
	resp, _ = postJSON(t, ts, "/v1/simulate", SimulateRequest{Trace: tr, Initiators: []int{0}, States: []int8{9}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad state code: status = %d, want 400", resp.StatusCode)
	}
	// Initiator out of range (caught by the diffusion layer).
	resp, _ = postJSON(t, ts, "/v1/simulate", SimulateRequest{Trace: tr, Initiators: []int{tr.Nodes + 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range initiator: status = %d, want 400", resp.StatusCode)
	}
}

func TestHealthzAlwaysAnswers(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := holdWorkers(t, s, 2)
	defer release()
	resp, body := getBody(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation = %d, body %s", resp.StatusCode, body)
	}
}

func TestDetectAllMethods(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 8, 200, 1200, 4)
	for _, method := range []string{"rid", "rid-tree", "rid-positive", "rumor-centrality", "jordan-center", "degree-max", "ensemble"} {
		t.Run(method, func(t *testing.T) {
			resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Detector: method})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, body %s", resp.StatusCode, body)
			}
			var det DetectResponse
			if err := json.Unmarshal(body, &det); err != nil {
				t.Fatal(err)
			}
			if len(det.Initiators) == 0 {
				t.Fatal("no initiators")
			}
		})
	}
}

func TestPoolUnit(t *testing.T) {
	p := NewPool(2, 4)
	if p.Workers() != 2 || p.Capacity() != 4 {
		t.Fatalf("pool shape = %d/%d", p.Workers(), p.Capacity())
	}
	var mu sync.Mutex
	ran := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		if !p.TrySubmit(func() { mu.Lock(); ran++; mu.Unlock(); wg.Done() }) {
			t.Fatalf("submit %d refused", i)
		}
	}
	wg.Wait()
	p.Close()
	p.Close() // idempotent
	if p.TrySubmit(func() {}) {
		t.Error("closed pool accepted a job")
	}
	mu.Lock()
	defer mu.Unlock()
	if ran != 4 {
		t.Errorf("ran = %d, want 4", ran)
	}
}

func TestGraphCacheLRU(t *testing.T) {
	c := NewGraphCache(2)
	traces := make([]*trace.Trace, 3)
	for i := range traces {
		traces[i] = sampleTrace(t, uint64(10+i), 20+i, 60, 1)
	}
	for i, tr := range traces[:2] {
		g, err := tr.BuildGraph()
		if err != nil {
			t.Fatal(err)
		}
		c.Put(tr.NetworkHash(), g)
		if c.Len() != i+1 {
			t.Fatalf("len = %d", c.Len())
		}
	}
	// Touch the first so the second becomes LRU.
	if _, ok := c.Get(traces[0].NetworkHash()); !ok {
		t.Fatal("entry 0 missing")
	}
	g2, _ := traces[2].BuildGraph()
	c.Put(traces[2].NetworkHash(), g2)
	if c.Len() != 2 {
		t.Fatalf("len after eviction = %d", c.Len())
	}
	if _, ok := c.Get(traces[1].NetworkHash()); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(traces[0].NetworkHash()); !ok {
		t.Error("recently used entry evicted")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram()
	h.observe(3 * time.Millisecond)
	h.observe(40 * time.Millisecond)
	h.observe(7 * time.Second)
	if h.Count != 3 {
		t.Fatalf("count = %d", h.Count)
	}
	// 3ms lands in the 5ms bucket (index 2) and all above.
	if h.Buckets[1] != 0 || h.Buckets[2] != 1 {
		t.Errorf("3ms misbucketed: %v", h.Buckets)
	}
	// 7s overflows every bound into +Inf only.
	last := len(h.Buckets) - 1
	if h.Buckets[last] != 3 || h.Buckets[last-1] != 2 {
		t.Errorf("overflow misbucketed: %v", h.Buckets)
	}
	if h.MaxMS < 6999 {
		t.Errorf("max = %g", h.MaxMS)
	}
	if m := h.MeanMS(); m <= 0 {
		t.Errorf("mean = %g", m)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.CountRequest("detect", 200+i%2)
				reg.Observe(fmt.Sprintf("label-%d", i%3), time.Millisecond)
				reg.CountCache(j%2 == 0)
				reg.CountRejected()
			}
		}(i)
	}
	wg.Wait()
	snap := reg.Snapshot(QueueSnapshot{}, 0, 0)
	var total int64
	for _, n := range snap.Requests["detect"] {
		total += n
	}
	if total != 800 {
		t.Errorf("request total = %d, want 800", total)
	}
	if snap.Queue.Rejected != 800 {
		t.Errorf("rejected = %d, want 800", snap.Queue.Rejected)
	}
	if snap.Cache.Hits+snap.Cache.Misses != 800 {
		t.Errorf("cache lookups = %d, want 800", snap.Cache.Hits+snap.Cache.Misses)
	}
}
