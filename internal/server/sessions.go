package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/sgraph"
	"repro/internal/trace"
)

// SessionRequest is the POST /v1/sessions payload: open an event-sourced
// detection stream over a network, either submitted inline (the trace's
// snapshot and ground truth are ignored — sessions start with no node
// infected) or already cached by content hash.
type SessionRequest struct {
	// Trace supplies the network. Mutually exclusive with GraphHash.
	Trace *trace.Trace `json:"trace,omitempty"`
	// GraphHash reuses a cached network (as returned in
	// DetectResponse.GraphHash / SimulateResponse.GraphHash).
	GraphHash string `json:"graph_hash,omitempty"`
	// Beta is RID's per-extra-initiator penalty; zero defaults to 0.3.
	Beta float64 `json:"beta,omitempty"`
	// Alpha is the MFC boosting coefficient; zero defaults to 3.
	Alpha float64 `json:"alpha,omitempty"`
}

// SessionResponse is the POST /v1/sessions result.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	GraphHash string `json:"graph_hash"`
	Nodes     int    `json:"nodes"`
	Cache     string `json:"cache"` // "hit" or "miss"
}

// EventsRequest is the POST /v1/sessions/{id}/events payload: a batch of
// activation-link events applied in order.
type EventsRequest struct {
	Events []trace.Event `json:"events"`
}

// EventsResponse is the POST /v1/sessions/{id}/events result. On a
// validation failure mid-batch the valid prefix stays applied, Applied says
// how far the batch got, and Error carries the first rejection (status
// 400).
type EventsResponse struct {
	Applied     int    `json:"applied"`
	EventsTotal int64  `json:"events_total"`
	Infected    int    `json:"infected"`
	Error       string `json:"error,omitempty"`
	TraceID     string `json:"trace_id,omitempty"`
}

// SessionDetectResponse is the GET /v1/sessions/{id}/detect result: the
// same shape as DetectResponse plus the incremental work accounting.
type SessionDetectResponse struct {
	Detector   string            `json:"detector"`
	Initiators []RankedInitiator `json:"initiators"`
	Trees      int               `json:"trees"`
	Components int               `json:"components"`
	// Dirty components were re-extracted and re-solved by this call;
	// Reused ones served their cached fragments (Dirty + Reused =
	// Components).
	Dirty     int     `json:"dirty"`
	Reused    int     `json:"reused"`
	GraphHash string  `json:"graph_hash"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// StageTimings covers the dirty components' pipeline work only — reused
	// components spend nothing.
	StageTimings map[string]float64 `json:"stage_timings,omitempty"`
	Algo         *obs.CounterSet    `json:"algo_counters,omitempty"`
	TraceID      string             `json:"trace_id,omitempty"`
}

// handleSessionCreate opens a session. At capacity (after idle eviction)
// the request is shed with 429 + Retry-After, mirroring the worker pool's
// backpressure.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := decodeBody(w, r, &req, s.cfg.MaxBodyBytes); err != nil {
		writeError(w, err)
		return
	}
	if (req.Trace == nil) == (req.GraphHash == "") {
		writeError(w, badRequest("exactly one of trace or graph_hash is required"))
		return
	}
	var (
		g          *graphAndHash
		cacheState string
	)
	if req.Trace != nil {
		if err := req.Trace.Validate(); err != nil {
			writeError(w, badRequest("%v", err))
			return
		}
		built, hash, state, err := s.resolveGraph(req.Trace)
		if err != nil {
			writeError(w, err)
			return
		}
		g, cacheState = &graphAndHash{g: built, hash: hash}, state
	} else {
		built, ok := s.cache.Get(req.GraphHash)
		if !ok {
			s.reg.CountCache(false)
			writeError(w, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("graph %s not cached; resubmit the trace", req.GraphHash)})
			return
		}
		s.reg.CountCache(true)
		g, cacheState = &graphAndHash{g: built, hash: req.GraphHash}, "hit"
	}
	beta := req.Beta
	if beta == 0 {
		beta = 0.3
	}
	sess, err := ingest.NewSession(g.g, g.hash, core.RIDConfig{
		Alpha: req.Alpha, Beta: beta, Parallelism: s.cfg.Parallelism,
	})
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	// The creating request's trace is the session's root: every later
	// detect on this session links back to it, stitching the multi-request
	// investigation into one traceable unit.
	if tc := obs.TraceContextFrom(r.Context()); tc.Valid() {
		sess.SetRoot(tc.Ref())
	}
	id, err := s.sessions.Create(sess)
	if errors.Is(err, ingest.ErrSessionLimit) {
		s.reg.CountRejected()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "session limit reached; retry later"})
		return
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{
		SessionID: id,
		GraphHash: g.hash,
		Nodes:     sess.Nodes(),
		Cache:     cacheState,
	})
}

type graphAndHash struct {
	g    *sgraph.Graph
	hash string
}

// handleSessionEvents applies a batch of events. Application is a few map
// and union-find operations per event, so it runs inline rather than on
// the compute pool; its counters still land in the registry and the flight
// recorder.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessionFrom(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req EventsRequest
	if err := decodeBody(w, r, &req, s.cfg.MaxBodyBytes); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Events) == 0 {
		writeError(w, badRequest("missing events"))
		return
	}
	start := time.Now()
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(r.Context(), rec)
	applied, applyErr := sess.Apply(ctx, req.Events)
	if t := obs.TelemetryFrom(ctx); t != nil {
		t.SetRecorder(rec)
		t.SetDetail(fmt.Sprintf("events=%d applied=%d", len(req.Events), applied))
	}
	s.reg.MergeRecorder(rec)
	fr := obs.FlightRecord{
		TraceID:   obs.TraceID(ctx),
		Route:     "/v1/sessions/events",
		Detail:    fmt.Sprintf("events=%d applied=%d", len(req.Events), applied),
		Start:     start,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Status:    http.StatusOK,
		Algo:      rec.CounterSetSnapshot(),
	}
	resp := EventsResponse{
		Applied:     applied,
		EventsTotal: sess.Events(),
		Infected:    sess.InfectedCount(),
		TraceID:     obs.TraceID(ctx),
	}
	status := http.StatusOK
	if applyErr != nil {
		status = http.StatusBadRequest
		resp.Error = applyErr.Error()
		fr.Status = status
		fr.Error = applyErr.Error()
	}
	s.recordFlight(fr)
	writeJSON(w, status, resp)
}

// handleSessionDetect runs incremental detection inside the worker pool
// under the request deadline. ?k= truncates to the top-k ranked
// initiators; ?timeout_ms= tightens the deadline.
func (s *Server) handleSessionDetect(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessionFrom(r)
	if err != nil {
		writeError(w, err)
		return
	}
	k, err := queryInt(r, "k")
	if err != nil || k < 0 {
		writeError(w, badRequest("k must be a non-negative integer"))
		return
	}
	timeoutMS, err := queryInt(r, "timeout_ms")
	if err != nil || timeoutMS < 0 {
		writeError(w, badRequest("timeout_ms must be a non-negative integer"))
		return
	}
	s.runPooled(w, r, timeoutMS, func(ctx context.Context) (any, error) {
		return s.sessionDetect(ctx, sess, k)
	})
}

func (s *Server) sessionDetect(ctx context.Context, sess *ingest.Session, k int) (resp *SessionDetectResponse, err error) {
	start := time.Now()
	rec := obs.NewRecorder()
	ctx = obs.WithRecorder(ctx, rec)
	telem := obs.TelemetryFrom(ctx)
	telem.SetRecorder(rec)
	var stats ingest.DetectStats
	defer func() {
		fr := obs.FlightRecord{
			TraceID:   obs.TraceID(ctx),
			Route:     "/v1/sessions/detect",
			Detail:    fmt.Sprintf("dirty=%d reused=%d", stats.Dirty, stats.Reused),
			Start:     start,
			ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
			Status:    statusOf(err),
			Stages:    rec.StageViews(),
			Counters:  rec.Counters(),
			Algo:      rec.CounterSetSnapshot(),
		}
		if err != nil {
			fr.Error = err.Error()
		}
		s.recordFlight(fr)
	}()
	det, stats, err := sess.Detect(ctx)
	if errors.Is(err, cascade.ErrNoInfected) {
		return nil, badRequest("session has no infected nodes yet; apply events first")
	}
	if err != nil {
		return nil, err
	}
	telem.SetDetail(fmt.Sprintf("dirty=%d reused=%d", stats.Dirty, stats.Reused))
	// Link the detect span to the session root and the event batches that
	// dirtied the components it just re-solved.
	telem.AddLinks(stats.Links...)
	s.reg.MergeRecorder(rec)
	resp = &SessionDetectResponse{
		Detector:     "RID(incremental)",
		Initiators:   rankInitiators(det, k),
		Trees:        det.Trees,
		Components:   det.Components,
		Dirty:        stats.Dirty,
		Reused:       stats.Reused,
		GraphHash:    sess.GraphHash(),
		ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
		StageTimings: rec.StageMillis(),
		Algo:         rec.CounterSetSnapshot(),
		TraceID:      obs.TraceID(ctx),
	}
	s.reg.Observe("detect.session", time.Since(start))
	return resp, nil
}

// handleSessionDelete closes a session early (sessions also expire on
// idle TTL).
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Delete(r.PathValue("id")) {
		writeError(w, &httpError{status: http.StatusNotFound, msg: "session not found"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) sessionFrom(r *http.Request) (*ingest.Session, error) {
	sess, err := s.sessions.Get(r.PathValue("id"))
	if errors.Is(err, ingest.ErrNotFound) {
		return nil, &httpError{status: http.StatusNotFound, msg: "session not found"}
	}
	return sess, err
}

// queryInt parses an optional non-negative integer query parameter,
// returning 0 when absent.
func queryInt(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	return strconv.Atoi(v)
}
