package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/trace"
)

func deleteReq(tb testing.TB, ts *httptest.Server, path string) (*http.Response, []byte) {
	tb.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp, body
}

// TestSessionLifecycle walks the full streaming flow: one-shot detect (its
// graph_hash in the response is the session handle — satellite
// confirmation that /v1/detect returns it), session creation by hash,
// event batches, incremental detects converging to the one-shot answer,
// and deletion.
func TestSessionLifecycle(t *testing.T) {
	tr := sampleTrace(t, 77, 150, 700, 3)
	_, ts := newTestServer(t, Config{})

	// One-shot detect: pins graph_hash presence and caches the network.
	resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Beta: 0.3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d %s", resp.StatusCode, body)
	}
	var oneShot DetectResponse
	if err := json.Unmarshal(body, &oneShot); err != nil {
		t.Fatal(err)
	}
	if oneShot.GraphHash == "" {
		t.Fatal("/v1/detect response missing graph_hash")
	}
	if oneShot.GraphHash != tr.NetworkHash() {
		t.Fatalf("graph_hash %q, want %q", oneShot.GraphHash, tr.NetworkHash())
	}

	// Create a session by the returned hash — no trace re-upload.
	resp, body = postJSON(t, ts, "/v1/sessions", SessionRequest{GraphHash: oneShot.GraphHash, Beta: 0.3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d %s", resp.StatusCode, body)
	}
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.SessionID == "" || sr.GraphHash != oneShot.GraphHash || sr.Cache != "hit" || sr.Nodes != tr.Nodes {
		t.Fatalf("session response wrong: %+v", sr)
	}

	// Detect before any event: 400.
	resp, body = getBody(t, ts, "/v1/sessions/"+sr.SessionID+"/detect")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-session detect: %d %s", resp.StatusCode, body)
	}

	// Stream the trace's events in two batches.
	events, err := ingest.EventsFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	half := len(events) / 2
	for _, batch := range [][]trace.Event{events[:half], events[half:]} {
		resp, body = postJSON(t, ts, "/v1/sessions/"+sr.SessionID+"/events", EventsRequest{Events: batch})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events: %d %s", resp.StatusCode, body)
		}
		var er EventsResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Applied != len(batch) {
			t.Fatalf("applied %d of %d: %s", er.Applied, len(batch), body)
		}
		resp, body = getBody(t, ts, "/v1/sessions/"+sr.SessionID+"/detect")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session detect: %d %s", resp.StatusCode, body)
		}
	}
	var sd SessionDetectResponse
	if err := json.Unmarshal(body, &sd); err != nil {
		t.Fatal(err)
	}
	// After the full stream, the incremental detection must equal the
	// one-shot detect on the same snapshot, initiator for initiator.
	if sd.GraphHash != oneShot.GraphHash {
		t.Fatalf("session detect graph_hash %q, want %q", sd.GraphHash, oneShot.GraphHash)
	}
	if sd.Trees != oneShot.Trees || sd.Components != oneShot.Components {
		t.Fatalf("shape differs: session {trees %d comps %d}, one-shot {trees %d comps %d}",
			sd.Trees, sd.Components, oneShot.Trees, oneShot.Components)
	}
	if !reflect.DeepEqual(sd.Initiators, oneShot.Initiators) {
		t.Fatalf("initiators differ:\nsession:  %+v\none-shot: %+v", sd.Initiators, oneShot.Initiators)
	}
	if sd.Dirty+sd.Reused != sd.Components {
		t.Fatalf("dirty %d + reused %d != components %d", sd.Dirty, sd.Reused, sd.Components)
	}
	if sd.Algo == nil || sd.Algo.Ingest.ComponentsDirty != int64(sd.Dirty) {
		t.Fatalf("algo_counters missing ingest accounting: %+v", sd.Algo)
	}

	// A repeat detect reuses every component.
	resp, body = getBody(t, ts, "/v1/sessions/"+sr.SessionID+"/detect")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat detect: %d %s", resp.StatusCode, body)
	}
	var sd2 SessionDetectResponse
	if err := json.Unmarshal(body, &sd2); err != nil {
		t.Fatal(err)
	}
	if sd2.Dirty != 0 || sd2.Reused != sd2.Components {
		t.Fatalf("repeat detect should reuse everything: %+v", sd2)
	}
	if !reflect.DeepEqual(sd2.Initiators, sd.Initiators) {
		t.Fatal("repeat detect changed the result")
	}

	// Delete, then every session route 404s.
	resp, body = deleteReq(t, ts, "/v1/sessions/"+sr.SessionID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	resp, _ = deleteReq(t, ts, "/v1/sessions/"+sr.SessionID)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d", resp.StatusCode)
	}
	resp, _ = getBody(t, ts, "/v1/sessions/"+sr.SessionID+"/detect")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("detect after delete: %d", resp.StatusCode)
	}
}

func TestSessionCreateValidation(t *testing.T) {
	tr := sampleTrace(t, 78, 60, 240, 2)
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  SessionRequest
		want int
	}{
		{"neither trace nor hash", SessionRequest{}, http.StatusBadRequest},
		{"both trace and hash", SessionRequest{Trace: tr, GraphHash: "abc"}, http.StatusBadRequest},
		{"unknown hash", SessionRequest{GraphHash: "deadbeef"}, http.StatusNotFound},
		{"negative beta", SessionRequest{Trace: tr, Beta: -1}, http.StatusBadRequest},
		{"by trace", SessionRequest{Trace: tr}, http.StatusOK},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts, "/v1/sessions", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
	// Partial batch: the valid prefix sticks, the response reports both.
	resp, body := postJSON(t, ts, "/v1/sessions", SessionRequest{Trace: tr})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	events, err := ingest.EventsFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]trace.Event{events[0]}, events[0]) // second is a duplicate target
	resp, body = postJSON(t, ts, "/v1/sessions/"+sr.SessionID+"/events", EventsRequest{Events: bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: %d %s", resp.StatusCode, body)
	}
	var er EventsResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Applied != 1 || er.Error == "" || er.Infected != 1 {
		t.Fatalf("partial batch response wrong: %+v", er)
	}
}

func TestSessionLimit429(t *testing.T) {
	tr := sampleTrace(t, 79, 40, 160, 2)
	_, ts := newTestServer(t, Config{MaxSessions: 2, SessionTTL: time.Hour})
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts, "/v1/sessions", SessionRequest{Trace: tr})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts, "/v1/sessions", SessionRequest{Trace: tr})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit create: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestSessionDetectQueryValidation(t *testing.T) {
	tr := sampleTrace(t, 80, 40, 160, 2)
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts, "/v1/sessions", SessionRequest{Trace: tr})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"?k=-1", "?k=x", "?timeout_ms=-5", "?timeout_ms=x"} {
		resp, _ = getBody(t, ts, "/v1/sessions/"+sr.SessionID+"/detect"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	// k truncates the ranked list.
	events, err := ingest.EventsFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts, "/v1/sessions/"+sr.SessionID+"/events", EventsRequest{Events: events})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d %s", resp.StatusCode, body)
	}
	resp, body = getBody(t, ts, fmt.Sprintf("/v1/sessions/%s/detect?k=1", sr.SessionID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d %s", resp.StatusCode, body)
	}
	var sd SessionDetectResponse
	if err := json.Unmarshal(body, &sd); err != nil {
		t.Fatal(err)
	}
	if len(sd.Initiators) != 1 {
		t.Fatalf("k=1 returned %d initiators", len(sd.Initiators))
	}
}
