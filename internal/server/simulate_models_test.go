package server

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/diffusion"
)

// TestSimulateAllModels runs every registered diffusion model through
// /v1/simulate with its defaults and checks the response carries the model
// name, a sane cascade and the typed diffusion counters.
func TestSimulateAllModels(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 11, 150, 900, 3)

	models := diffusion.Models()
	if len(models) != 7 {
		t.Fatalf("registered models = %v, want 7", models)
	}
	for _, name := range models {
		var sim SimulateResponse
		resp, body := postJSON(t, ts, "/v1/simulate", SimulateRequest{
			Trace: tr, Initiators: []int{0, 1}, States: []int8{1, -1}, Model: name, Seed: 5,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model %q: status = %d, body %s", name, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &sim); err != nil {
			t.Fatal(err)
		}
		if sim.Model != name {
			t.Errorf("model %q: response model = %q", name, sim.Model)
		}
		if sim.Infected < 2 {
			t.Errorf("model %q: infected = %d, want >= 2 (the initiators)", name, sim.Infected)
		}
		if len(sim.Observed) != tr.Nodes {
			t.Errorf("model %q: observed length = %d, want %d", name, len(sim.Observed), tr.Nodes)
		}
		if sim.Algo == nil || sim.Algo.Diffusion.Runs != 1 {
			t.Errorf("model %q: algo_counters missing or runs != 1: %+v", name, sim.Algo)
		}
	}
}

// TestSimulateModelParams exercises non-default params per model end to
// end, including the gossip exchange counter unique to pushpull.
func TestSimulateModelParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 12, 150, 900, 3)

	cases := []struct {
		model  string
		params map[string]any
	}{
		{"mfc", map[string]any{"alpha": 2.5, "disable_flip": true}},
		{"lt", map[string]any{"max_rounds": 4}},
		{"ltff", map[string]any{"bias": 3.0, "max_rounds": 50}},
		{"pushpull", map[string]any{"max_rounds": 40, "stall": 5}},
		{"sir", map[string]any{"beta": 1.5, "gamma": 0.5}},
		{"voter", map[string]any{"rounds": 10}},
	}
	for _, tc := range cases {
		var sim SimulateResponse
		resp, body := postJSON(t, ts, "/v1/simulate", SimulateRequest{
			Trace: tr, Initiators: []int{2}, Model: tc.model, Params: tc.params, Seed: 9,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model %q params %v: status = %d, body %s", tc.model, tc.params, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &sim); err != nil {
			t.Fatal(err)
		}
		if tc.model == "pushpull" && (sim.Algo == nil || sim.Algo.Diffusion.Exchanges == 0) {
			t.Errorf("pushpull: expected nonzero diffusion exchanges, got %+v", sim.Algo)
		}
	}
}

// TestSimulatePinnedErrors pins the /v1/simulate 400 surface byte-exact:
// clients parse these messages, so any drift is a breaking change.
func TestSimulatePinnedErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 13, 40, 160, 2)

	cases := []struct {
		name string
		req  SimulateRequest
		want string
	}{
		{
			name: "unknown model",
			req:  SimulateRequest{Trace: tr, Initiators: []int{0}, Model: "gossip"},
			want: `diffusion: unknown model "gossip" (registered: ic, lt, ltff, mfc, pushpull, sir, voter)`,
		},
		{
			name: "bad param type",
			req:  SimulateRequest{Trace: tr, Initiators: []int{0}, Model: "mfc", Params: map[string]any{"alpha": "three"}},
			want: `diffusion: model "mfc": param "alpha": want number, got string`,
		},
		{
			name: "fractional integer param",
			req:  SimulateRequest{Trace: tr, Initiators: []int{0}, Model: "voter", Params: map[string]any{"rounds": 2.5}},
			want: `diffusion: model "voter": param "rounds": want integer, got 2.5`,
		},
		{
			name: "unknown param",
			req:  SimulateRequest{Trace: tr, Initiators: []int{0}, Model: "mfc", Params: map[string]any{"beta": 1}},
			want: `diffusion: model "mfc": unknown param "beta" (accepts: alpha, disable_flip)`,
		},
		{
			name: "param out of range",
			req:  SimulateRequest{Trace: tr, Initiators: []int{0}, Model: "sir", Params: map[string]any{"gamma": 2}},
			want: `diffusion: invalid model coefficient: SIR Gamma must be in (0,1], got 2`,
		},
		{
			name: "ltff bias below one",
			req:  SimulateRequest{Trace: tr, Initiators: []int{0}, Model: "ltff", Params: map[string]any{"bias": 0.5}},
			want: `diffusion: invalid model coefficient: LTFF Bias must be >= 1, got 0.5`,
		},
		{
			name: "legacy alpha on non-mfc model",
			req:  SimulateRequest{Trace: tr, Initiators: []int{0}, Model: "sir", Alpha: 2},
			want: `legacy field "alpha" requires model "mfc" (got "sir")`,
		},
		{
			name: "legacy disable_flip on non-mfc model",
			req:  SimulateRequest{Trace: tr, Initiators: []int{0}, Model: "voter", DisableFlip: true},
			want: `legacy field "disable_flip" requires model "mfc" (got "voter")`,
		},
		{
			name: "legacy alpha conflicts with params",
			req:  SimulateRequest{Trace: tr, Initiators: []int{0}, Alpha: 2, Params: map[string]any{"alpha": 3}},
			want: `legacy field "alpha" conflicts with params key "alpha"`,
		},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts, "/v1/simulate", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("%s: bad error body %s: %v", tc.name, body, err)
		}
		if er.Error != tc.want {
			t.Errorf("%s: error = %q, want %q", tc.name, er.Error, tc.want)
		}
	}
}

// TestSimulateLegacyMFCRequests checks the pre-registry request schema
// still runs unchanged: no model field plus top-level alpha/disable_flip
// behaves exactly like the explicit mfc params spelling.
func TestSimulateLegacyMFCRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 14, 150, 900, 3)

	var legacy, modern SimulateResponse
	resp, body := postJSON(t, ts, "/v1/simulate", SimulateRequest{
		Trace: tr, Initiators: []int{0, 3}, Alpha: 2.5, DisableFlip: true, Seed: 21,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy request: status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Model != "mfc" {
		t.Errorf("legacy request model = %q, want mfc", legacy.Model)
	}
	resp, body = postJSON(t, ts, "/v1/simulate", SimulateRequest{
		Trace: tr, Initiators: []int{0, 3}, Model: "mfc",
		Params: map[string]any{"alpha": 2.5, "disable_flip": true}, Seed: 21,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("modern request: status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &modern); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Observed, modern.Observed) || legacy.Rounds != modern.Rounds {
		t.Error("legacy alpha/disable_flip request diverged from the equivalent params spelling")
	}
}

// TestSimulateParallelismInvariance pins that simulate responses are
// independent of the server's pipeline fan-out setting for every model.
func TestSimulateParallelismInvariance(t *testing.T) {
	_, ts1 := newTestServer(t, Config{Parallelism: 1})
	_, ts8 := newTestServer(t, Config{Parallelism: 8})
	tr := sampleTrace(t, 15, 150, 900, 3)

	for _, name := range diffusion.Models() {
		req := SimulateRequest{Trace: tr, Initiators: []int{1, 4}, States: []int8{1, -1}, Model: name, Seed: 3}
		var a, b SimulateResponse
		resp, body := postJSON(t, ts1, "/v1/simulate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model %q parallelism 1: status = %d, body %s", name, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &a); err != nil {
			t.Fatal(err)
		}
		resp, body = postJSON(t, ts8, "/v1/simulate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model %q parallelism 8: status = %d, body %s", name, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Observed, b.Observed) || a.Rounds != b.Rounds || a.Infected != b.Infected {
			t.Errorf("model %q: simulate output differs between Parallelism 1 and 8", name)
		}
	}
}
