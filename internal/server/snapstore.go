package server

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sgraph"
)

// SnapshotStore persists built diffusion networks as flat CSR snapshot
// files ("RIDG" v1, internal/sgraph) keyed by content hash
// (trace.NetworkHash) under one directory. A process restart — or a second
// replica sharing the directory — reloads a network as zero-copy mmap
// views over the file instead of re-validating and re-sorting the wire
// trace, which is an order of magnitude faster on the sharded-Epinions
// preset. Writes go through a temp file plus rename, so a concurrent
// loader never observes a partially written snapshot; a corrupt or
// truncated file fails LoadSnapshot's checksum and structural validation
// and the caller falls back to rebuilding from the trace — a bad file is
// never served as a partial graph. A nil store is the disabled state:
// Load always misses and Save is a no-op.
type SnapshotStore struct {
	dir string
}

// NewSnapshotStore opens (creating if needed) a snapshot directory. An
// empty dir returns a nil store, the disabled state, so callers can thread
// an optional -snapshot-dir flag straight through.
func NewSnapshotStore(dir string) (*SnapshotStore, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: snapshot dir: %w", err)
	}
	return &SnapshotStore{dir: dir}, nil
}

// validSnapshotKey reports whether hash is a plain lowercase-hex content
// hash — the only key shape the store touches disk for. graph_hash values
// arrive from clients, so anything else (path separators, dots, uppercase)
// must never reach filepath.Join.
func validSnapshotKey(hash string) bool {
	if len(hash) < 16 || len(hash) > 128 {
		return false
	}
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (st *SnapshotStore) path(hash string) string {
	return filepath.Join(st.dir, hash+".ridg")
}

// Load returns the stored graph for hash. A disabled store, an invalid
// key, or a missing file all report os.ErrNotExist; decode failures
// (truncation, checksum or structural corruption) surface as other errors
// so the caller can log and rebuild.
func (st *SnapshotStore) Load(hash string) (*sgraph.Graph, error) {
	if st == nil || !validSnapshotKey(hash) {
		return nil, os.ErrNotExist
	}
	return sgraph.LoadSnapshot(st.path(hash))
}

// Save persists g under hash atomically (temp file + rename), overwriting
// any previous snapshot. No-op on a nil store or an invalid key.
func (st *SnapshotStore) Save(hash string, g *sgraph.Graph) error {
	if st == nil || !validSnapshotKey(hash) {
		return nil
	}
	return sgraph.WriteSnapshotFile(g, st.path(hash))
}
