package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/trace"
)

// jsonDetect posts one /v1/detect and decodes the response, failing the
// test on any non-200.
func jsonDetect(t *testing.T, ts *httptest.Server, tr *trace.Trace) DetectResponse {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Detector: "rid", Beta: 0.3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out DetectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSnapshotStoreWarmRestart builds a graph in one server (persisting
// its snapshot), then verifies a fresh server over the same directory
// warm-loads it — same results, cache state "warm", no rebuild.
func TestSnapshotStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := NewSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := sampleTrace(t, 21, 250, 1500, 5)

	_, ts1 := newTestServer(t, Config{Snapshots: store})
	first := jsonDetect(t, ts1, tr)
	if first.Cache != "miss" {
		t.Fatalf("first detect cache = %q, want miss", first.Cache)
	}
	if _, err := os.Stat(filepath.Join(dir, tr.NetworkHash()+".ridg")); err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}

	// "Restart": a brand-new server with an empty LRU over the same store.
	_, ts2 := newTestServer(t, Config{Snapshots: store})
	warm := jsonDetect(t, ts2, tr)
	if warm.Cache != "warm" {
		t.Fatalf("restarted detect cache = %q, want warm", warm.Cache)
	}
	if !reflect.DeepEqual(first.Initiators, warm.Initiators) {
		t.Fatal("warm-loaded graph changed the detection")
	}

	// graph_hash-addressed requests warm-load too.
	_, ts3 := newTestServer(t, Config{Snapshots: store})
	resp, body := postJSON(t, ts3, "/v1/simulate", SimulateRequest{
		GraphHash: first.GraphHash, Initiators: []int{0}, Seed: 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate by hash: status = %d, body %s", resp.StatusCode, body)
	}
	var sim SimulateResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Cache != "warm" {
		t.Fatalf("simulate cache = %q, want warm", sim.Cache)
	}
}

// TestSnapshotStoreCorruptFallsBack corrupts the persisted snapshot and
// checks the server silently rebuilds from the trace (cache state "miss",
// identical results) and rewrites a good snapshot — a bad file is never
// served as a partial graph.
func TestSnapshotStoreCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	store, err := NewSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := sampleTrace(t, 22, 200, 1200, 4)

	_, ts1 := newTestServer(t, Config{Snapshots: store})
	first := jsonDetect(t, ts1, tr)

	path := filepath.Join(dir, tr.NetworkHash()+".ridg")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func() []byte{
		"truncated": func() []byte { return raw[:len(raw)/2] },
		"corrupted": func() []byte {
			bad := append([]byte(nil), raw...)
			bad[len(bad)/2] ^= 0xFF
			return bad
		},
	} {
		if err := os.WriteFile(path, mutate(), 0o644); err != nil {
			t.Fatal(err)
		}
		_, ts := newTestServer(t, Config{Snapshots: store})
		got := jsonDetect(t, ts, tr)
		if got.Cache != "miss" {
			t.Fatalf("%s: cache = %q, want miss (rebuild)", name, got.Cache)
		}
		if !reflect.DeepEqual(first.Initiators, got.Initiators) {
			t.Fatalf("%s: rebuild changed the detection", name)
		}
		// The rebuild re-persisted a loadable snapshot.
		if _, err := store.Load(tr.NetworkHash()); err != nil {
			t.Fatalf("%s: snapshot not repaired: %v", name, err)
		}
	}
}

// TestSnapshotWarmLoadVsEviction races warm loads against LRU eviction: a
// size-1 cache with two networks means every request for one evicts the
// other, so concurrent detects continuously re-load from the snapshot
// store while Put is evicting. Every response must be complete and
// correct — never a partial graph.
func TestSnapshotWarmLoadVsEviction(t *testing.T) {
	store, err := NewSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Snapshots: store, CacheSize: 1, Workers: 4})

	traces := []*trace.Trace{
		sampleTrace(t, 23, 150, 900, 3),
		sampleTrace(t, 24, 150, 900, 3),
	}
	want := make([]DetectResponse, len(traces))
	for i, tr := range traces {
		want[i] = jsonDetect(t, ts, tr) // also persists both snapshots
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				idx := (w + i) % 2
				resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: traces[idx], Detector: "rid", Beta: 0.3})
				if resp.StatusCode != http.StatusOK {
					errc <- &httpError{status: resp.StatusCode, msg: string(body)}
					return
				}
				var got DetectResponse
				if err := json.Unmarshal(body, &got); err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(got.Initiators, want[idx].Initiators) || got.GraphHash != want[idx].GraphHash {
					errc <- &httpError{status: 500, msg: "warm-loaded detection diverged under eviction pressure"}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
