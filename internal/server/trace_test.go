package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/trace"
)

// This file holds the end-to-end trace-propagation tests: an inbound W3C
// traceparent must flow through the middleware, into the handler's pipeline
// recorder, and out both as response headers and as OTLP/JSON spans in the
// exporter's capture file — with session detects linking back to the event
// spans that dirtied their components.

const (
	inboundTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	inboundSpanID  = "00f067aa0ba902b7"
	inboundHeader  = "00-" + inboundTraceID + "-" + inboundSpanID + "-01"
)

// postTraced POSTs JSON with trace headers attached.
func postTraced(tb testing.TB, ts *httptest.Server, path string, body any, headers map[string]string) (*http.Response, []byte) {
	tb.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		tb.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(payload))
	if err != nil {
		tb.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		tb.Fatal(err)
	}
	return resp, buf.Bytes()
}

// captureSpan is the slice of the OTLP/JSON wire shape these tests read.
type captureSpan struct {
	TraceID      string `json:"traceId"`
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId"`
	Name         string `json:"name"`
	Kind         int    `json:"kind"`
	Attributes   []struct {
		Key   string `json:"key"`
		Value struct {
			StringValue string `json:"stringValue"`
			IntValue    string `json:"intValue"`
		} `json:"value"`
	} `json:"attributes"`
	Links []struct {
		TraceID string `json:"traceId"`
		SpanID  string `json:"spanId"`
	} `json:"links"`
	Status struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"status"`
}

// readCapture flattens every span in the NDJSON capture file.
func readCapture(tb testing.TB, path string) []captureSpan {
	tb.Helper()
	f, err := os.Open(path)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	var spans []captureSpan
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []captureSpan `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			tb.Fatalf("capture line is not valid OTLP/JSON: %v", err)
		}
		for _, rs := range line.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				spans = append(spans, ss.Spans...)
			}
		}
	}
	if err := sc.Err(); err != nil {
		tb.Fatal(err)
	}
	return spans
}

func findSpan(spans []captureSpan, name string) *captureSpan {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
	}
	return nil
}

func attrValue(sp *captureSpan, key string) (string, bool) {
	for _, a := range sp.Attributes {
		if a.Key == key {
			if a.Value.IntValue != "" {
				return a.Value.IntValue, true
			}
			return a.Value.StringValue, true
		}
	}
	return "", false
}

// newTracedServer builds a server whose exporter captures to an NDJSON file
// and returns the capture path. BatchSize 1 so every request flushes a line
// as soon as the worker sees it; the exporter is closed explicitly by the
// tests (idempotent, so the Cleanup Shutdown re-closing it is fine).
func newTracedServer(tb testing.TB, ratio float64) (*httptest.Server, *obs.Exporter, string) {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "capture.ndjson")
	exp, err := obs.NewExporter(obs.ExporterConfig{File: path, BatchSize: 1, SampleRatio: ratio})
	if err != nil {
		tb.Fatal(err)
	}
	_, ts := newTestServer(tb, Config{Exporter: exp})
	return ts, exp, path
}

// TestTracePropagationEndToEnd drives the acceptance flow: inbound
// traceparent → response echoes a valid traceparent on the same trace with
// a fresh span id → the OTLP capture carries the inbound trace id, the
// inbound span id as parentSpanId, and the pipeline's algo counters as
// attributes on the detect root span, with stage child spans beneath it.
func TestTracePropagationEndToEnd(t *testing.T) {
	ts, exp, path := newTracedServer(t, 1)
	tr := sampleTrace(t, 11, 200, 1000, 4)

	resp, body := postTraced(t, ts, "/v1/detect",
		DetectRequest{Trace: tr, Detector: "rid", Beta: 0.3},
		map[string]string{"traceparent": inboundHeader, "tracestate": "congo=t61rcWkgMzE"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d %s", resp.StatusCode, body)
	}

	// Response headers: same trace, this hop's own span id, legacy echo.
	echoed, err := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if err != nil {
		t.Fatalf("response traceparent %q invalid: %v", resp.Header.Get("traceparent"), err)
	}
	if echoed.TraceID != inboundTraceID {
		t.Fatalf("response trace id %q, want inbound %q", echoed.TraceID, inboundTraceID)
	}
	if echoed.SpanID == inboundSpanID {
		t.Fatal("server must mint its own span id, not echo the caller's")
	}
	if !echoed.Sampled() {
		t.Fatal("sampled inbound trace at ratio 1 must stay sampled")
	}
	if got := resp.Header.Get("X-Trace-Id"); got != inboundTraceID {
		t.Fatalf("X-Trace-Id %q, want %q", got, inboundTraceID)
	}

	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	spans := readCapture(t, path)
	root := findSpan(spans, "detect")
	if root == nil {
		t.Fatalf("no detect root span in capture; spans: %d", len(spans))
	}
	if root.TraceID != inboundTraceID {
		t.Fatalf("exported trace id %q, want inbound %q", root.TraceID, inboundTraceID)
	}
	if root.ParentSpanID != inboundSpanID {
		t.Fatalf("exported parentSpanId %q, want inbound span %q", root.ParentSpanID, inboundSpanID)
	}
	if root.SpanID != echoed.SpanID {
		t.Fatalf("exported span id %q, want the one echoed to the caller %q", root.SpanID, echoed.SpanID)
	}
	if root.Kind != 2 {
		t.Fatalf("root kind %d, want SERVER (2)", root.Kind)
	}
	if v, ok := attrValue(root, "http.status_code"); !ok || v != "200" {
		t.Fatalf("http.status_code = %q", v)
	}
	if v, ok := attrValue(root, "request.detail"); !ok || !strings.HasPrefix(v, "detector=") {
		t.Fatalf("request.detail = %q, want detector name", v)
	}
	// The pipeline's work counters and algorithm-depth counters must ride
	// on the root span.
	if _, ok := attrValue(root, "counter.infected_nodes"); !ok {
		t.Error("counter.infected_nodes attribute missing")
	}
	foundAlgo := false
	for _, a := range root.Attributes {
		if strings.HasPrefix(a.Key, "algo.") {
			foundAlgo = true
			break
		}
	}
	if !foundAlgo {
		t.Error("no algo.* attributes on the detect span")
	}
	// Stage child spans hang off the root within the same trace.
	stages := 0
	for _, sp := range spans {
		if strings.HasPrefix(sp.Name, "stage.") && sp.ParentSpanID == root.SpanID {
			if sp.TraceID != inboundTraceID {
				t.Fatalf("stage %s on trace %q", sp.Name, sp.TraceID)
			}
			stages++
		}
	}
	if stages == 0 {
		t.Error("no stage child spans under the detect root")
	}
}

// TestTraceLegacyHeaderExport maps an X-Trace-Id request onto the
// deterministic trace id in both headers and the exported span.
func TestTraceLegacyHeaderExport(t *testing.T) {
	ts, exp, path := newTracedServer(t, 1)
	tr := sampleTrace(t, 12, 150, 700, 3)
	mapped := obs.TraceIDFromLegacy("legacy-client-7")

	resp, body := postTraced(t, ts, "/v1/detect",
		DetectRequest{Trace: tr, Beta: 0.3},
		map[string]string{"X-Trace-Id": "legacy-client-7"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != mapped {
		t.Fatalf("X-Trace-Id %q, want mapped %q", got, mapped)
	}
	echoed, err := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if err != nil || echoed.TraceID != mapped {
		t.Fatalf("traceparent %q (%v), want trace %q", resp.Header.Get("traceparent"), err, mapped)
	}

	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	root := findSpan(readCapture(t, path), "detect")
	if root == nil {
		t.Fatal("no detect span in capture")
	}
	if root.TraceID != mapped {
		t.Fatalf("exported trace %q, want %q", root.TraceID, mapped)
	}
	if root.ParentSpanID != "" {
		t.Fatalf("legacy requests have no remote parent, got %q", root.ParentSpanID)
	}
}

// TestTailSamplingAtServer checks the server-level contract with a
// near-zero ratio: an ordinary 200 samples out, a failed request still
// exports (and carries error status).
func TestTailSamplingAtServer(t *testing.T) {
	ts, exp, path := newTracedServer(t, 0.000001)

	// Trace ids whose low 64 bits are maximal: certain to sample out.
	okHeader := "00-1111111111111111ffffffffffffffff-00f067aa0ba902b7-01"
	failHeader := "00-2222222222222222ffffffffffffffff-00f067aa0ba902b7-01"

	resp, _ := postTraced(t, ts, "/v1/detect", DetectRequest{Trace: sampleTrace(t, 13, 120, 500, 3), Beta: 0.3},
		map[string]string{"traceparent": okHeader})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d", resp.StatusCode)
	}
	// The echoed sampled flag must reflect the head-sampling decision.
	echoed, err := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if err != nil {
		t.Fatal(err)
	}
	if !echoed.Sampled() {
		// Inbound flag was 01, which the middleware preserves; the span is
		// still tail-dropped below. (Pinning documents the OR semantics.)
		t.Fatal("inbound sampled flag must be preserved")
	}

	// A malformed body fails with 400 — failure pins it past sampling.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", failHeader)
	fresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", fresp.StatusCode)
	}

	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	spans := readCapture(t, path)
	for _, sp := range spans {
		if sp.TraceID == "1111111111111111ffffffffffffffff" {
			t.Fatal("ordinary request exported despite sampling out")
		}
	}
	var failed *captureSpan
	for i := range spans {
		if spans[i].TraceID == "2222222222222222ffffffffffffffff" {
			failed = &spans[i]
		}
	}
	if failed == nil {
		t.Fatal("failed request missing from capture — tail sampling must pin failures")
	}
	if failed.Status.Code != 2 {
		t.Fatalf("failed span status %d, want ERROR (2)", failed.Status.Code)
	}
	if v, _ := attrValue(failed, "http.status_code"); v != "400" {
		t.Fatalf("failed span http.status_code = %q", v)
	}
}

// TestSessionDetectSpanLinks streams a session (created and fed under
// distinct traces) and asserts the session detect's exported span links
// back to the session root span and to each event batch's span.
func TestSessionDetectSpanLinks(t *testing.T) {
	ts, exp, path := newTracedServer(t, 1)
	tr := sampleTrace(t, 21, 150, 700, 3)

	rootHeader := "00-aaaa0000aaaa0000aaaa0000aaaa0001-1000000000000001-01"
	eventHeaders := []string{
		"00-bbbb0000bbbb0000bbbb0000bbbb0001-2000000000000001-01",
		"00-cccc0000cccc0000cccc0000cccc0001-3000000000000001-01",
	}

	resp, body := postTraced(t, ts, "/v1/sessions", SessionRequest{Trace: tr, Beta: 0.3},
		map[string]string{"traceparent": rootHeader})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d %s", resp.StatusCode, body)
	}
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	events, err := ingest.EventsFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	half := len(events) / 2
	for i, batch := range [][]trace.Event{events[:half], events[half:]} {
		resp, body = postTraced(t, ts, "/v1/sessions/"+sr.SessionID+"/events",
			EventsRequest{Events: batch}, map[string]string{"traceparent": eventHeaders[i]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events %d: %d %s", i, resp.StatusCode, body)
		}
	}

	resp, body = getBody(t, ts, "/v1/sessions/"+sr.SessionID+"/detect")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session detect: %d %s", resp.StatusCode, body)
	}

	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	spans := readCapture(t, path)
	detect := findSpan(spans, "session_detect")
	if detect == nil {
		t.Fatal("no session_detect span in capture")
	}
	linked := map[string]bool{}
	for _, l := range detect.Links {
		linked[l.TraceID] = true
	}
	if !linked["aaaa0000aaaa0000aaaa0000aaaa0001"] {
		t.Errorf("detect span does not link the session root trace; links: %v", detect.Links)
	}
	for _, want := range []string{"bbbb0000bbbb0000bbbb0000bbbb0001", "cccc0000cccc0000cccc0000cccc0001"} {
		if !linked[want] {
			t.Errorf("detect span does not link event-batch trace %s; links: %v", want, detect.Links)
		}
	}
	// The detect span carries the incremental-work detail and the ingest
	// counters from the session's recorder.
	if v, ok := attrValue(detect, "request.detail"); !ok || !strings.Contains(v, "dirty=") {
		t.Errorf("session_detect detail = %q, want dirty/reused accounting", v)
	}
}

// TestMetricsJSONTelemetrySections asserts the /metrics JSON document grew
// the session gauges, SLO snapshot and exporter counters.
func TestMetricsJSONTelemetrySections(t *testing.T) {
	ts, exp, _ := newTracedServer(t, 1)
	tr := sampleTrace(t, 22, 120, 500, 3)
	if resp, body := postJSON(t, ts, "/v1/sessions", SessionRequest{Trace: tr, Beta: 0.3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d %s", resp.StatusCode, body)
	}
	resp, body := getBody(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Sessions == nil || snap.Sessions.Active != 1 {
		t.Fatalf("sessions section = %+v, want 1 active", snap.Sessions)
	}
	if snap.SLO == nil || snap.SLO.Target != 0.99 {
		t.Fatalf("slo section = %+v, want default target", snap.SLO)
	}
	found := false
	for _, route := range snap.SLO.Routes {
		if route.Route == "session_create" {
			found = true
		}
	}
	if !found {
		t.Errorf("slo section lacks the session_create route: %+v", snap.SLO.Routes)
	}
	if snap.Export == nil || snap.Export.Enqueued < 1 {
		t.Fatalf("export section = %+v, want at least one enqueued request", snap.Export)
	}
	exp.Close()
}

// TestDebugSLOPage smoke-tests the SLO dashboard in both formats.
func TestDebugSLOPage(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := sampleTrace(t, 23, 120, 500, 3)
	if resp, body := postJSON(t, ts, "/v1/detect", DetectRequest{Trace: tr, Beta: 0.3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d %s", resp.StatusCode, body)
	}
	resp, body := getBody(t, ts, "/debug/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/slo: %d", resp.StatusCode)
	}
	page := string(body)
	if !strings.Contains(page, "SLO burn rates") || !strings.Contains(page, "detect") {
		t.Fatalf("dashboard missing expected content: %s", page[:min(len(page), 200)])
	}
	resp, body = getBody(t, ts, "/debug/slo?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/slo json: %d", resp.StatusCode)
	}
	var snap obs.SLOSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Routes) == 0 || snap.Target != 0.99 {
		t.Fatalf("json snapshot = %+v", snap)
	}
	if resp, _ := getBody(t, ts, "/debug/slo?format=yaml"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: %d, want 400", resp.StatusCode)
	}
}
