// Package setcover implements the machinery of the paper's NP-hardness
// proof (Lemma 3.1): a greedy set-cover solver and the polynomial-time
// reduction from set cover to the exact ISOMIT problem, which builds the
// infected signed graph instance the proof describes. Tests use it to
// exercise the construction; the greedy solver also powers a sanity
// baseline for minimum-initiator questions.
package setcover

import (
	"fmt"
	"sort"

	"repro/internal/sgraph"
)

// Instance is a set-cover instance over elements 0..NumElements-1.
type Instance struct {
	NumElements int
	Subsets     [][]int
}

// Validate checks element ranges and coverage feasibility.
func (in Instance) Validate() error {
	if in.NumElements < 0 {
		return fmt.Errorf("setcover: negative element count")
	}
	covered := make([]bool, in.NumElements)
	for si, s := range in.Subsets {
		for _, e := range s {
			if e < 0 || e >= in.NumElements {
				return fmt.Errorf("setcover: subset %d contains out-of-range element %d", si, e)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("setcover: element %d not covered by any subset", e)
		}
	}
	return nil
}

// Greedy returns the indices of subsets chosen by the classical ln(n)-
// approximate greedy algorithm: repeatedly take the subset covering the
// most uncovered elements (lowest index wins ties, for determinism).
func Greedy(in Instance) ([]int, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	uncovered := make(map[int]bool, in.NumElements)
	for e := 0; e < in.NumElements; e++ {
		uncovered[e] = true
	}
	var chosen []int
	for len(uncovered) > 0 {
		best, bestGain := -1, 0
		for si, s := range in.Subsets {
			gain := 0
			for _, e := range s {
				if uncovered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("setcover: infeasible despite validation")
		}
		chosen = append(chosen, best)
		for _, e := range in.Subsets[best] {
			delete(uncovered, e)
		}
	}
	sort.Ints(chosen)
	return chosen, nil
}

// Reduction is the ISOMIT instance built from a set-cover instance per the
// proof of Lemma 3.1.
type Reduction struct {
	// G is the infected signed graph of the construction: one node per
	// element (IDs 0..n-1), one per subset (IDs n..n+m-1) and the dummy
	// node d (ID n+m). All links positive; weights per the proof.
	G *sgraph.Graph
	// States marks every node +1 ("all trust the rumor"), the target
	// snapshot of the reduction.
	States []sgraph.State
	// ElementNode, SubsetNode and Dummy map instance parts to node IDs.
	ElementNode []int
	SubsetNode  []int
	Dummy       int
}

// Reduce builds the graph of Lemma 3.1: for each element e_i in subset
// L_j, a link n_i -> n_{j+n} with weight 1; every element node links to
// the dummy with weight 1/n; the dummy links to every subset node with
// weight 1. Choosing subset nodes as rumor initiators then activates all
// element nodes they cover (weight-1 links are certain under MFC), and
// covering all elements maps onto covering the element nodes.
//
// Erratum (DESIGN.md §2b): as literally specified the construction admits
// a shortcut — seeding the dummy node alone reaches every node through
// weight-1 paths — so the minimum-initiator optimum does not equal minimum
// set cover without further constraining d. The constructor builds the
// paper's graph as written; tests exercise its structure and forward MFC
// behavior, not minimality.
func Reduce(in Instance) (*Reduction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n, m := in.NumElements, len(in.Subsets)
	total := n + m + 1
	b := sgraph.NewBuilder(total)
	red := &Reduction{
		ElementNode: make([]int, n),
		SubsetNode:  make([]int, m),
		Dummy:       n + m,
	}
	for i := 0; i < n; i++ {
		red.ElementNode[i] = i
	}
	for j := 0; j < m; j++ {
		red.SubsetNode[j] = n + j
	}
	for j, s := range in.Subsets {
		for _, e := range s {
			// The proof's link n_i -> n_{j+n}: in diffusion orientation the
			// subset node must be able to activate its elements, so we add
			// the diffusion link subset -> element with weight 1.
			b.AddEdge(red.SubsetNode[j], red.ElementNode[e], sgraph.Positive, 1)
		}
	}
	for i := 0; i < n; i++ {
		b.AddEdge(red.ElementNode[i], red.Dummy, sgraph.Positive, 1/float64(n))
	}
	for j := 0; j < m; j++ {
		b.AddEdge(red.Dummy, red.SubsetNode[j], sgraph.Positive, 1)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("setcover: %w", err)
	}
	red.G = g
	red.States = make([]sgraph.State, total)
	for i := range red.States {
		red.States[i] = sgraph.StatePositive
	}
	return red, nil
}

// CoverFromInitiators interprets a detected initiator set on the reduction
// graph back as a set-cover solution: the chosen subset nodes, plus — for
// any directly-seeded element or dummy node — nothing (they cover no
// elements). Returns the subset indices, ascending.
func (r *Reduction) CoverFromInitiators(initiators []int) []int {
	n := len(r.ElementNode)
	var cover []int
	for _, v := range initiators {
		if v >= n && v < n+len(r.SubsetNode) {
			cover = append(cover, v-n)
		}
	}
	sort.Ints(cover)
	return cover
}

// Covers reports whether the given subset indices cover every element.
func (in Instance) Covers(subsets []int) bool {
	covered := make([]bool, in.NumElements)
	for _, si := range subsets {
		if si < 0 || si >= len(in.Subsets) {
			return false
		}
		for _, e := range in.Subsets[si] {
			covered[e] = true
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	return true
}
