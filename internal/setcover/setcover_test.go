package setcover

import (
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/sgraph"
	"repro/internal/xrand"
)

func sample() Instance {
	return Instance{
		NumElements: 5,
		Subsets: [][]int{
			{0, 1},
			{1, 2, 3},
			{3, 4},
			{0, 4},
			{2},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Instance{NumElements: 3, Subsets: [][]int{{0, 5}}}
	if bad.Validate() == nil {
		t.Error("out-of-range element should fail")
	}
	uncov := Instance{NumElements: 3, Subsets: [][]int{{0, 1}}}
	if uncov.Validate() == nil {
		t.Error("uncovered element should fail")
	}
}

func TestGreedy(t *testing.T) {
	chosen, err := Greedy(sample())
	if err != nil {
		t.Fatal(err)
	}
	if !sample().Covers(chosen) {
		t.Fatalf("greedy pick %v does not cover", chosen)
	}
	// Optimal here is 2 subsets ({1,2,3} + {0,4}); greedy finds it.
	if len(chosen) != 2 {
		t.Errorf("greedy size = %d, want 2", len(chosen))
	}
}

func TestGreedyAlwaysCovers(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(8)
		in := Instance{NumElements: n, Subsets: make([][]int, m)}
		for j := 0; j < m; j++ {
			for e := 0; e < n; e++ {
				if rng.Bool(0.4) {
					in.Subsets[j] = append(in.Subsets[j], e)
				}
			}
		}
		// ensure feasibility with a catch-all subset
		all := make([]int, n)
		for e := range all {
			all[e] = e
		}
		in.Subsets = append(in.Subsets, all)
		chosen, err := Greedy(in)
		return err == nil && in.Covers(chosen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReduceStructure(t *testing.T) {
	in := sample()
	red, err := Reduce(in)
	if err != nil {
		t.Fatal(err)
	}
	n, m := in.NumElements, len(in.Subsets)
	if red.G.NumNodes() != n+m+1 {
		t.Fatalf("nodes = %d, want %d", red.G.NumNodes(), n+m+1)
	}
	// subset -> element links with weight 1
	for j, s := range in.Subsets {
		for _, e := range s {
			edge, ok := red.G.HasEdge(red.SubsetNode[j], red.ElementNode[e])
			if !ok || edge.Weight != 1 || edge.Sign != sgraph.Positive {
				t.Errorf("missing subset->element link %d->%d", j, e)
			}
		}
	}
	// element -> dummy links with weight 1/n
	for _, en := range red.ElementNode {
		edge, ok := red.G.HasEdge(en, red.Dummy)
		if !ok || edge.Weight != 1/float64(n) {
			t.Errorf("missing element->dummy link from %d", en)
		}
	}
	// dummy -> subset links with weight 1
	for _, sn := range red.SubsetNode {
		if _, ok := red.G.HasEdge(red.Dummy, sn); !ok {
			t.Errorf("missing dummy->subset link to %d", sn)
		}
	}
	for _, s := range red.States {
		if s != sgraph.StatePositive {
			t.Error("all states should be +1")
		}
	}
}

func TestReductionSeedsActivateCoveredElements(t *testing.T) {
	// Seeding MFC with the greedy cover's subset nodes (weight-1 links
	// are deterministic) must activate every element node with state +1.
	in := sample()
	red, err := Reduce(in)
	if err != nil {
		t.Fatal(err)
	}
	chosen, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]int, len(chosen))
	states := make([]sgraph.State, len(chosen))
	for i, si := range chosen {
		seeds[i] = red.SubsetNode[si]
		states[i] = sgraph.StatePositive
	}
	c, err := diffusion.MFC(red.G, seeds, states, diffusion.MFCConfig{Alpha: 1}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, en := range red.ElementNode {
		if c.States[en] != sgraph.StatePositive {
			t.Errorf("element node %d not activated", en)
		}
	}
}

func TestCoverFromInitiators(t *testing.T) {
	red, err := Reduce(sample())
	if err != nil {
		t.Fatal(err)
	}
	got := red.CoverFromInitiators([]int{red.SubsetNode[2], red.ElementNode[0], red.Dummy, red.SubsetNode[0]})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("cover = %v, want [0 2]", got)
	}
}
