package sgraph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format: positive links solid,
// negative links dashed red, and — when states is non-nil (length
// NumNodes) — nodes colored by state (+1 green, -1 red, ? gray, inactive
// unfilled). Handy for eyeballing small infected subgraphs:
//
//	dot -Tsvg out.dot > out.svg
func WriteDOT(w io.Writer, g *Graph, name string, states []State) error {
	if states != nil && len(states) != g.NumNodes() {
		return fmt.Errorf("sgraph: %d states for %d nodes", len(states), g.NumNodes())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", name)
	fmt.Fprintf(bw, "  node [shape=circle fontsize=10];\n")
	if states != nil {
		for v, s := range states {
			switch s {
			case StatePositive:
				fmt.Fprintf(bw, "  %d [style=filled fillcolor=palegreen];\n", v)
			case StateNegative:
				fmt.Fprintf(bw, "  %d [style=filled fillcolor=lightcoral];\n", v)
			case StateUnknown:
				fmt.Fprintf(bw, "  %d [style=filled fillcolor=lightgray label=\"%d?\"];\n", v, v)
			}
		}
	}
	var err error
	g.Edges(func(e Edge) {
		if err != nil {
			return
		}
		attrs := fmt.Sprintf("label=\"%.2f\"", e.Weight)
		if e.Sign == Negative {
			attrs += " style=dashed color=red"
		}
		_, err = fmt.Fprintf(bw, "  %d -> %d [%s];\n", e.From, e.To, attrs)
	})
	if err != nil {
		return fmt.Errorf("sgraph: %w", err)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
