package sgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := mustGraph(t, 3, []Edge{
		{From: 0, To: 1, Sign: Positive, Weight: 0.5},
		{From: 1, To: 2, Sign: Negative, Weight: 0.25},
	})
	states := []State{StatePositive, StateNegative, StateUnknown}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "test", states); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "test"`,
		"0 -> 1",
		"1 -> 2",
		"style=dashed color=red",
		"palegreen",
		"lightcoral",
		"lightgray",
		`label="0.50"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Without states: no fills.
	buf.Reset()
	if err := WriteDOT(&buf, g, "plain", nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "palegreen") {
		t.Error("stateless DOT should not color nodes")
	}
}

func TestWriteDOTValidation(t *testing.T) {
	g := mustGraph(t, 2, []Edge{{From: 0, To: 1, Sign: Positive, Weight: 0.5}})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "bad", []State{StatePositive}); err == nil {
		t.Error("state length mismatch should error")
	}
}
