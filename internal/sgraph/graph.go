// Package sgraph implements the weighted signed directed graph substrate of
// the paper (Definitions 1–3): signed social networks, their reversed
// diffusion networks, induced infected subgraphs, undirected connected
// components, and the Jaccard-coefficient edge weighting used by the
// experimental setup.
//
// Graphs are stored in flat structure-of-arrays CSR form: parallel edge
// attribute arrays (from, to, sign, weight) plus per-node out-edge and
// in-edge index lists packed into two offset/list array pairs. The layout
// has no per-node slice headers or pointers, so a built graph can be
// persisted as an mmap-able snapshot and loaded back as aliased array views
// without re-indexing (see WriteSnapshot/LoadSnapshot). Node IDs are dense
// ints in [0, NumNodes).
package sgraph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sign is the polarity of a link or the belief state of a node: +1 or -1.
// The zero value is invalid for links; node states additionally use
// StateInactive and StateUnknown (see State).
type Sign int8

// Link polarities.
const (
	Positive Sign = +1
	Negative Sign = -1
)

// String returns "+" or "-" (or "0"/"?" for non-link values).
func (s Sign) String() string {
	switch s {
	case Positive:
		return "+"
	case Negative:
		return "-"
	default:
		return fmt.Sprintf("Sign(%d)", int8(s))
	}
}

// Edge is one directed signed weighted link u -> v.
type Edge struct {
	From, To int
	Sign     Sign
	Weight   float64
}

// Graph is an immutable weighted signed directed graph. Build one with a
// Builder. The zero value is an empty graph.
//
// Storage is flat CSR: edge attributes live in four parallel arrays indexed
// by a stable edge ID (insertion order), and the per-node adjacency is two
// offset/list pairs — outList[outStart[u]:outStart[u+1]] are the edge IDs of
// u's out-links sorted by target, inList likewise sorted by source. The
// arrays may alias a read-only memory-mapped snapshot (see LoadSnapshot);
// nothing mutates them after Build.
type Graph struct {
	n          int
	edgeFrom   []int32
	edgeTo     []int32
	edgeSign   []int8
	edgeWeight []float64
	// outStart has n+1 entries; outList[outStart[u]:outStart[u+1]] holds
	// edge IDs of u's out-links, sorted by To.
	outStart []int32
	outList  []int32
	// inStart/inList mirror outStart/outList for in-links, sorted by From.
	inStart []int32
	inList  []int32
	// snap retains the backing mmap (if any) so the mapping outlives every
	// aliased array view; see LoadSnapshot.
	snap *mapping
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed links.
func (g *Graph) NumEdges() int { return len(g.edgeTo) }

// edge materializes the i-th edge record from the flat arrays.
func (g *Graph) edge(i int32) Edge {
	return Edge{
		From:   int(g.edgeFrom[i]),
		To:     int(g.edgeTo[i]),
		Sign:   Sign(g.edgeSign[i]),
		Weight: g.edgeWeight[i],
	}
}

// Edge returns the i-th edge in insertion order. It panics if i is out of
// range.
func (g *Graph) Edge(i int) Edge { return g.edge(int32(i)) }

// Edges calls fn for every edge. Iteration order is insertion order.
func (g *Graph) Edges(fn func(Edge)) {
	for i := range g.edgeTo {
		fn(g.edge(int32(i)))
	}
}

// OutDegree returns the number of out-links of u.
func (g *Graph) OutDegree(u int) int { return int(g.outStart[u+1] - g.outStart[u]) }

// InDegree returns the number of in-links of v.
func (g *Graph) InDegree(v int) int { return int(g.inStart[v+1] - g.inStart[v]) }

// out returns the edge-ID list of u's out-links, sorted by target.
func (g *Graph) out(u int) []int32 { return g.outList[g.outStart[u]:g.outStart[u+1]] }

// in returns the edge-ID list of v's in-links, sorted by source.
func (g *Graph) in(v int) []int32 { return g.inList[g.inStart[v]:g.inStart[v+1]] }

// Out calls fn for each out-link of u, in ascending order of target ID.
func (g *Graph) Out(u int, fn func(Edge)) {
	for _, i := range g.out(u) {
		fn(g.edge(i))
	}
}

// OutIndexed calls fn for each out-link of u with the edge's stable index
// (as accepted by Edge), in ascending order of target ID. Simulators use
// the index to track per-edge state in dense arrays.
func (g *Graph) OutIndexed(u int, fn func(i int, e Edge)) {
	for _, i := range g.out(u) {
		fn(int(i), g.edge(i))
	}
}

// In calls fn for each in-link of v, in ascending order of source ID.
func (g *Graph) In(v int, fn func(Edge)) {
	for _, i := range g.in(v) {
		fn(g.edge(i))
	}
}

// OutEdges returns a freshly allocated slice of u's out-links.
func (g *Graph) OutEdges(u int) []Edge {
	idx := g.out(u)
	out := make([]Edge, 0, len(idx))
	for _, i := range idx {
		out = append(out, g.edge(i))
	}
	return out
}

// InEdges returns a freshly allocated slice of v's in-links.
func (g *Graph) InEdges(v int) []Edge {
	idx := g.in(v)
	in := make([]Edge, 0, len(idx))
	for _, i := range idx {
		in = append(in, g.edge(i))
	}
	return in
}

// HasEdge reports whether a link u -> v exists and returns it.
func (g *Graph) HasEdge(u, v int) (Edge, bool) {
	idx := g.out(u)
	// out lists are sorted by target; binary search.
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(g.edgeTo[idx[mid]]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(idx) && int(g.edgeTo[idx[lo]]) == v {
		return g.edge(idx[lo]), true
	}
	return Edge{}, false
}

// Reverse returns the diffusion network of g per Definition 2: every link
// (u, v) becomes (v, u) with the same sign and weight. Under the paper's
// trust-centric reading, a social link "u trusts v" becomes a diffusion link
// "information flows v -> u".
func (g *Graph) Reverse() *Graph {
	b := NewBuilder(g.n)
	for i := range g.edgeTo {
		b.AddEdge(int(g.edgeTo[i]), int(g.edgeFrom[i]), Sign(g.edgeSign[i]), g.edgeWeight[i])
	}
	rev, err := b.Build()
	if err != nil {
		// Reversing a valid graph cannot produce duplicate or invalid
		// edges; a failure here is a programming error.
		panic("sgraph: Reverse: " + err.Error())
	}
	return rev
}

// Stats summarizes a graph for reporting (Table II style).
type Stats struct {
	Nodes         int
	Edges         int
	PositiveEdges int
	NegativeEdges int
	PositiveRatio float64
	MaxOutDegree  int
	MaxInDegree   int
	MeanWeight    float64
}

// DegreePercentiles reports out-degree order statistics (p50, p90, p99 and
// the maximum), characterizing the heavy tail the generators must match.
func (g *Graph) DegreePercentiles() (p50, p90, p99, max int) {
	if g.n == 0 {
		return 0, 0, 0, 0
	}
	degs := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		degs[u] = g.OutDegree(u)
	}
	sort.Ints(degs)
	at := func(q float64) int { return degs[int(q*float64(g.n-1))] }
	return at(0.5), at(0.9), at(0.99), degs[g.n-1]
}

// Stats computes summary statistics of g.
func (g *Graph) Stats() Stats {
	st := Stats{Nodes: g.n, Edges: len(g.edgeTo)}
	var wsum float64
	for i := range g.edgeTo {
		if Sign(g.edgeSign[i]) == Positive {
			st.PositiveEdges++
		} else {
			st.NegativeEdges++
		}
		wsum += g.edgeWeight[i]
	}
	if st.Edges > 0 {
		st.PositiveRatio = float64(st.PositiveEdges) / float64(st.Edges)
		st.MeanWeight = wsum / float64(st.Edges)
	}
	for u := 0; u < g.n; u++ {
		if d := g.OutDegree(u); d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
		if d := g.InDegree(u); d > st.MaxInDegree {
			st.MaxInDegree = d
		}
	}
	return st
}

// Errors returned by Builder.Build.
var (
	ErrNodeRange     = errors.New("sgraph: node ID out of range")
	ErrSelfLoop      = errors.New("sgraph: self-loop")
	ErrDuplicateEdge = errors.New("sgraph: duplicate edge")
	ErrBadSign       = errors.New("sgraph: sign must be +1 or -1")
	ErrBadWeight     = errors.New("sgraph: weight must be in [0, 1]")
	ErrTooLarge      = errors.New("sgraph: graph exceeds int32 node/edge capacity")
)

// Builder accumulates edges and produces an immutable Graph. The zero value
// is unusable; call NewBuilder.
type Builder struct {
	n     int
	edges []Edge
	err   error
}

// NewBuilder returns a builder for a graph with n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Grow ensures the builder admits node IDs up to n-1.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddEdge records a directed signed link u -> v. Validation errors are
// deferred to Build so call sites can chain adds without per-call checks.
func (b *Builder) AddEdge(u, v int, sign Sign, weight float64) {
	if b.err != nil {
		return
	}
	switch {
	case u < 0 || u >= b.n || v < 0 || v >= b.n:
		b.err = fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeRange, u, v, b.n)
	case u == v:
		b.err = fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	case sign != Positive && sign != Negative:
		b.err = fmt.Errorf("%w: got %d on (%d,%d)", ErrBadSign, sign, u, v)
	case weight < 0 || weight > 1:
		b.err = fmt.Errorf("%w: got %g on (%d,%d)", ErrBadWeight, weight, u, v)
	default:
		b.edges = append(b.edges, Edge{From: u, To: v, Sign: sign, Weight: weight})
	}
}

// Len returns the number of edges recorded so far.
func (b *Builder) Len() int { return len(b.edges) }

// Build validates the accumulated edges and returns the immutable graph.
// Duplicate (u, v) pairs are rejected: the paper's model has at most one
// signed link per ordered pair.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.n > math.MaxInt32 || len(b.edges) > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d nodes, %d edges", ErrTooLarge, b.n, len(b.edges))
	}
	edges := b.edges
	b.edges = nil // transfer ownership
	m := len(edges)
	g := &Graph{
		n:          b.n,
		edgeFrom:   make([]int32, m),
		edgeTo:     make([]int32, m),
		edgeSign:   make([]int8, m),
		edgeWeight: make([]float64, m),
		outStart:   make([]int32, b.n+1),
		outList:    make([]int32, m),
		inStart:    make([]int32, b.n+1),
		inList:     make([]int32, m),
	}
	for i := range edges {
		e := &edges[i]
		g.edgeFrom[i] = int32(e.From)
		g.edgeTo[i] = int32(e.To)
		g.edgeSign[i] = int8(e.Sign)
		g.edgeWeight[i] = e.Weight
		g.outStart[e.From+1]++
		g.inStart[e.To+1]++
	}
	for u := 0; u < g.n; u++ {
		g.outStart[u+1] += g.outStart[u]
		g.inStart[u+1] += g.inStart[u]
	}
	// Fill the adjacency lists with a cursor pass, then sort each node's
	// segment in place (out by target, in by source).
	outPos := make([]int32, g.n)
	inPos := make([]int32, g.n)
	for i := range edges {
		u, v := edges[i].From, edges[i].To
		g.outList[g.outStart[u]+outPos[u]] = int32(i)
		outPos[u]++
		g.inList[g.inStart[v]+inPos[v]] = int32(i)
		inPos[v]++
	}
	for u := 0; u < g.n; u++ {
		idx := g.out(u)
		sort.Slice(idx, func(a, b int) bool { return g.edgeTo[idx[a]] < g.edgeTo[idx[b]] })
		for j := 1; j < len(idx); j++ {
			if g.edgeTo[idx[j]] == g.edgeTo[idx[j-1]] {
				return nil, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, g.edgeTo[idx[j]])
			}
		}
		in := g.in(u)
		sort.Slice(in, func(a, b int) bool { return g.edgeFrom[in[a]] < g.edgeFrom[in[b]] })
	}
	return g, nil
}

// CSRView exposes the graph's flat arrays for read-only hot-loop
// consumption: cascade extraction and the detection kernels iterate
// millions of edges per request, and going through the Out/In closure
// callbacks costs an indirect call per edge. The slices are the graph's
// own backing arrays (possibly aliasing a memory-mapped snapshot) — callers
// must never mutate them.
//
// Adjacency: OutList[OutStart[u]:OutStart[u+1]] are the edge indices of u's
// out-links sorted by EdgeTo; InList[InStart[v]:InStart[v+1]] are v's
// in-links sorted by EdgeFrom.
type CSRView struct {
	EdgeFrom, EdgeTo  []int32
	EdgeSign          []int8
	EdgeWeight        []float64
	OutStart, OutList []int32
	InStart, InList   []int32
	// owner pins the Graph — and therefore any mmap backing these slices —
	// while the view is reachable. Without it, a view retained past the
	// Graph's lifetime would let the mapping finalizer munmap memory the
	// slices still alias, and a later read would fault.
	owner *Graph
}

// CSR returns the flat-array view of the graph. The view keeps g (and any
// memory-mapped snapshot behind it) alive, so holding a CSRView is safe
// even after the last direct *Graph reference is dropped; raw slices
// copied out of the view carry no such pin and must not outlive it.
func (g *Graph) CSR() CSRView {
	return CSRView{
		EdgeFrom: g.edgeFrom, EdgeTo: g.edgeTo,
		EdgeSign: g.edgeSign, EdgeWeight: g.edgeWeight,
		OutStart: g.outStart, OutList: g.outList,
		InStart: g.inStart, InList: g.inList,
		owner: g,
	}
}

// MustBuild is Build for static graphs known to be valid; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
