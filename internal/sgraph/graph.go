// Package sgraph implements the weighted signed directed graph substrate of
// the paper (Definitions 1–3): signed social networks, their reversed
// diffusion networks, induced infected subgraphs, undirected connected
// components, and the Jaccard-coefficient edge weighting used by the
// experimental setup.
//
// Graphs are stored in a compact adjacency form: a flat edge array plus
// per-node out-edge and in-edge index slices (CSR-like), built once by
// Builder.Build. Node IDs are dense ints in [0, NumNodes).
package sgraph

import (
	"errors"
	"fmt"
	"sort"
)

// Sign is the polarity of a link or the belief state of a node: +1 or -1.
// The zero value is invalid for links; node states additionally use
// StateInactive and StateUnknown (see State).
type Sign int8

// Link polarities.
const (
	Positive Sign = +1
	Negative Sign = -1
)

// String returns "+" or "-" (or "0"/"?" for non-link values).
func (s Sign) String() string {
	switch s {
	case Positive:
		return "+"
	case Negative:
		return "-"
	default:
		return fmt.Sprintf("Sign(%d)", int8(s))
	}
}

// Edge is one directed signed weighted link u -> v.
type Edge struct {
	From, To int
	Sign     Sign
	Weight   float64
}

// Graph is an immutable weighted signed directed graph. Build one with a
// Builder. The zero value is an empty graph.
type Graph struct {
	n     int
	edges []Edge
	// outIdx[u] lists indices into edges of u's out-links, sorted by To.
	outIdx [][]int32
	// inIdx[v] lists indices into edges of v's in-links, sorted by From.
	inIdx [][]int32
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed links.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the i-th edge in insertion order. It panics if i is out of
// range.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges calls fn for every edge. Iteration order is insertion order.
func (g *Graph) Edges(fn func(Edge)) {
	for i := range g.edges {
		fn(g.edges[i])
	}
}

// OutDegree returns the number of out-links of u.
func (g *Graph) OutDegree(u int) int { return len(g.outIdx[u]) }

// InDegree returns the number of in-links of v.
func (g *Graph) InDegree(v int) int { return len(g.inIdx[v]) }

// Out calls fn for each out-link of u, in ascending order of target ID.
func (g *Graph) Out(u int, fn func(Edge)) {
	for _, i := range g.outIdx[u] {
		fn(g.edges[i])
	}
}

// OutIndexed calls fn for each out-link of u with the edge's stable index
// (as accepted by Edge), in ascending order of target ID. Simulators use
// the index to track per-edge state in dense arrays.
func (g *Graph) OutIndexed(u int, fn func(i int, e Edge)) {
	for _, i := range g.outIdx[u] {
		fn(int(i), g.edges[i])
	}
}

// In calls fn for each in-link of v, in ascending order of source ID.
func (g *Graph) In(v int, fn func(Edge)) {
	for _, i := range g.inIdx[v] {
		fn(g.edges[i])
	}
}

// OutEdges returns a freshly allocated slice of u's out-links.
func (g *Graph) OutEdges(u int) []Edge {
	out := make([]Edge, 0, len(g.outIdx[u]))
	for _, i := range g.outIdx[u] {
		out = append(out, g.edges[i])
	}
	return out
}

// InEdges returns a freshly allocated slice of v's in-links.
func (g *Graph) InEdges(v int) []Edge {
	in := make([]Edge, 0, len(g.inIdx[v]))
	for _, i := range g.inIdx[v] {
		in = append(in, g.edges[i])
	}
	return in
}

// HasEdge reports whether a link u -> v exists and returns it.
func (g *Graph) HasEdge(u, v int) (Edge, bool) {
	idx := g.outIdx[u]
	// outIdx is sorted by target; binary search.
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.edges[idx[mid]].To < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(idx) && g.edges[idx[lo]].To == v {
		return g.edges[idx[lo]], true
	}
	return Edge{}, false
}

// Reverse returns the diffusion network of g per Definition 2: every link
// (u, v) becomes (v, u) with the same sign and weight. Under the paper's
// trust-centric reading, a social link "u trusts v" becomes a diffusion link
// "information flows v -> u".
func (g *Graph) Reverse() *Graph {
	b := NewBuilder(g.n)
	for i := range g.edges {
		e := g.edges[i]
		b.AddEdge(e.To, e.From, e.Sign, e.Weight)
	}
	rev, err := b.Build()
	if err != nil {
		// Reversing a valid graph cannot produce duplicate or invalid
		// edges; a failure here is a programming error.
		panic("sgraph: Reverse: " + err.Error())
	}
	return rev
}

// Stats summarizes a graph for reporting (Table II style).
type Stats struct {
	Nodes         int
	Edges         int
	PositiveEdges int
	NegativeEdges int
	PositiveRatio float64
	MaxOutDegree  int
	MaxInDegree   int
	MeanWeight    float64
}

// DegreePercentiles reports out-degree order statistics (p50, p90, p99 and
// the maximum), characterizing the heavy tail the generators must match.
func (g *Graph) DegreePercentiles() (p50, p90, p99, max int) {
	if g.n == 0 {
		return 0, 0, 0, 0
	}
	degs := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		degs[u] = g.OutDegree(u)
	}
	sort.Ints(degs)
	at := func(q float64) int { return degs[int(q*float64(g.n-1))] }
	return at(0.5), at(0.9), at(0.99), degs[g.n-1]
}

// Stats computes summary statistics of g.
func (g *Graph) Stats() Stats {
	st := Stats{Nodes: g.n, Edges: len(g.edges)}
	var wsum float64
	for i := range g.edges {
		if g.edges[i].Sign == Positive {
			st.PositiveEdges++
		} else {
			st.NegativeEdges++
		}
		wsum += g.edges[i].Weight
	}
	if st.Edges > 0 {
		st.PositiveRatio = float64(st.PositiveEdges) / float64(st.Edges)
		st.MeanWeight = wsum / float64(st.Edges)
	}
	for u := 0; u < g.n; u++ {
		if d := g.OutDegree(u); d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
		if d := g.InDegree(u); d > st.MaxInDegree {
			st.MaxInDegree = d
		}
	}
	return st
}

// Errors returned by Builder.Build.
var (
	ErrNodeRange     = errors.New("sgraph: node ID out of range")
	ErrSelfLoop      = errors.New("sgraph: self-loop")
	ErrDuplicateEdge = errors.New("sgraph: duplicate edge")
	ErrBadSign       = errors.New("sgraph: sign must be +1 or -1")
	ErrBadWeight     = errors.New("sgraph: weight must be in [0, 1]")
)

// Builder accumulates edges and produces an immutable Graph. The zero value
// is unusable; call NewBuilder.
type Builder struct {
	n     int
	edges []Edge
	err   error
}

// NewBuilder returns a builder for a graph with n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Grow ensures the builder admits node IDs up to n-1.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddEdge records a directed signed link u -> v. Validation errors are
// deferred to Build so call sites can chain adds without per-call checks.
func (b *Builder) AddEdge(u, v int, sign Sign, weight float64) {
	if b.err != nil {
		return
	}
	switch {
	case u < 0 || u >= b.n || v < 0 || v >= b.n:
		b.err = fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeRange, u, v, b.n)
	case u == v:
		b.err = fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	case sign != Positive && sign != Negative:
		b.err = fmt.Errorf("%w: got %d on (%d,%d)", ErrBadSign, sign, u, v)
	case weight < 0 || weight > 1:
		b.err = fmt.Errorf("%w: got %g on (%d,%d)", ErrBadWeight, weight, u, v)
	default:
		b.edges = append(b.edges, Edge{From: u, To: v, Sign: sign, Weight: weight})
	}
}

// Len returns the number of edges recorded so far.
func (b *Builder) Len() int { return len(b.edges) }

// Build validates the accumulated edges and returns the immutable graph.
// Duplicate (u, v) pairs are rejected: the paper's model has at most one
// signed link per ordered pair.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		n:      b.n,
		edges:  b.edges,
		outIdx: make([][]int32, b.n),
		inIdx:  make([][]int32, b.n),
	}
	b.edges = nil // transfer ownership
	outDeg := make([]int32, g.n)
	inDeg := make([]int32, g.n)
	for i := range g.edges {
		outDeg[g.edges[i].From]++
		inDeg[g.edges[i].To]++
	}
	for u := 0; u < g.n; u++ {
		if outDeg[u] > 0 {
			g.outIdx[u] = make([]int32, 0, outDeg[u])
		}
		if inDeg[u] > 0 {
			g.inIdx[u] = make([]int32, 0, inDeg[u])
		}
	}
	for i := range g.edges {
		e := &g.edges[i]
		g.outIdx[e.From] = append(g.outIdx[e.From], int32(i))
		g.inIdx[e.To] = append(g.inIdx[e.To], int32(i))
	}
	for u := 0; u < g.n; u++ {
		idx := g.outIdx[u]
		sort.Slice(idx, func(a, b int) bool { return g.edges[idx[a]].To < g.edges[idx[b]].To })
		for j := 1; j < len(idx); j++ {
			if g.edges[idx[j]].To == g.edges[idx[j-1]].To {
				return nil, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, g.edges[idx[j]].To)
			}
		}
		in := g.inIdx[u]
		sort.Slice(in, func(a, b int) bool { return g.edges[in[a]].From < g.edges[in[b]].From })
	}
	return g, nil
}

// MustBuild is Build for static graphs known to be valid; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
