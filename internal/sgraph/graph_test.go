package sgraph

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.From, e.To, e.Sign, e.Weight)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		u, v    int
		sign    Sign
		w       float64
		wantErr error
	}{
		{"node out of range", 3, 0, 3, Positive, 0.5, ErrNodeRange},
		{"negative node", 3, -1, 0, Positive, 0.5, ErrNodeRange},
		{"self loop", 3, 1, 1, Positive, 0.5, ErrSelfLoop},
		{"zero sign", 3, 0, 1, 0, 0.5, ErrBadSign},
		{"sign two", 3, 0, 1, 2, 0.5, ErrBadSign},
		{"weight below", 3, 0, 1, Positive, -0.1, ErrBadWeight},
		{"weight above", 3, 0, 1, Positive, 1.1, ErrBadWeight},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder(tt.n)
			b.AddEdge(tt.u, tt.v, tt.sign, tt.w)
			if _, err := b.Build(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Build err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestBuilderDuplicateEdge(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, Positive, 0.5)
	b.AddEdge(0, 1, Negative, 0.2)
	if _, err := b.Build(); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("Build err = %v, want ErrDuplicateEdge", err)
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5, Positive, 0.5) // invalid
	b.AddEdge(0, 1, Positive, 0.5) // valid, but builder already failed
	if _, err := b.Build(); err == nil {
		t.Fatal("Build: want error after invalid add")
	}
}

func TestGraphAdjacency(t *testing.T) {
	g := mustGraph(t, 4, []Edge{
		{From: 0, To: 2, Sign: Positive, Weight: 0.3},
		{From: 0, To: 1, Sign: Negative, Weight: 0.7},
		{From: 2, To: 0, Sign: Positive, Weight: 0.1},
		{From: 3, To: 0, Sign: Negative, Weight: 0.9},
	})
	if got := g.NumNodes(); got != 4 {
		t.Errorf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(0); got != 2 {
		t.Errorf("InDegree(0) = %d, want 2", got)
	}
	// Out iterates in ascending target order.
	var targets []int
	g.Out(0, func(e Edge) { targets = append(targets, e.To) })
	if len(targets) != 2 || targets[0] != 1 || targets[1] != 2 {
		t.Errorf("Out(0) targets = %v, want [1 2]", targets)
	}
	var sources []int
	g.In(0, func(e Edge) { sources = append(sources, e.From) })
	if len(sources) != 2 || sources[0] != 2 || sources[1] != 3 {
		t.Errorf("In(0) sources = %v, want [2 3]", sources)
	}
	if got := g.OutEdges(0); len(got) != 2 {
		t.Errorf("OutEdges(0) len = %d, want 2", len(got))
	}
	if got := g.InEdges(0); len(got) != 2 {
		t.Errorf("InEdges(0) len = %d, want 2", len(got))
	}
}

func TestHasEdge(t *testing.T) {
	g := mustGraph(t, 5, []Edge{
		{From: 0, To: 1, Sign: Positive, Weight: 0.3},
		{From: 0, To: 3, Sign: Negative, Weight: 0.5},
		{From: 0, To: 4, Sign: Positive, Weight: 0.8},
		{From: 2, To: 1, Sign: Negative, Weight: 0.2},
	})
	if e, ok := g.HasEdge(0, 3); !ok || e.Sign != Negative || e.Weight != 0.5 {
		t.Errorf("HasEdge(0,3) = %+v, %v; want negative 0.5 edge", e, ok)
	}
	if _, ok := g.HasEdge(0, 2); ok {
		t.Error("HasEdge(0,2) = true, want false")
	}
	if _, ok := g.HasEdge(1, 0); ok {
		t.Error("HasEdge(1,0) = true, want false (directed)")
	}
	if _, ok := g.HasEdge(4, 0); ok {
		t.Error("HasEdge(4,0) = true, want false (no out-edges)")
	}
}

func TestReverse(t *testing.T) {
	g := mustGraph(t, 3, []Edge{
		{From: 0, To: 1, Sign: Positive, Weight: 0.3},
		{From: 1, To: 2, Sign: Negative, Weight: 0.7},
	})
	r := g.Reverse()
	if e, ok := r.HasEdge(1, 0); !ok || e.Sign != Positive || e.Weight != 0.3 {
		t.Errorf("Reverse missing edge (1,0): %+v %v", e, ok)
	}
	if e, ok := r.HasEdge(2, 1); !ok || e.Sign != Negative || e.Weight != 0.7 {
		t.Errorf("Reverse missing edge (2,1): %+v %v", e, ok)
	}
	if _, ok := r.HasEdge(0, 1); ok {
		t.Error("Reverse kept original edge (0,1)")
	}
}

// randomGraph builds a pseudo-random signed graph for property tests.
func randomGraph(seed uint64, n, m int) *Graph {
	rng := xrand.New(seed)
	b := NewBuilder(n)
	seen := make(map[[2]int]bool, m)
	for added := 0; added < m; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || seen[[2]int{u, v}] {
			added++ // avoid livelock on dense requests
			continue
		}
		seen[[2]int{u, v}] = true
		sig := Positive
		if rng.Bool(0.25) {
			sig = Negative
		}
		b.AddEdge(u, v, sig, rng.Float64())
		added++
	}
	return b.MustBuild()
}

func TestReverseTwiceIsIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 30, 80)
		rr := g.Reverse().Reverse()
		if rr.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(e Edge) {
			got, found := rr.HasEdge(e.From, e.To)
			if !found || got.Sign != e.Sign || got.Weight != e.Weight {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	g := mustGraph(t, 4, []Edge{
		{From: 0, To: 1, Sign: Positive, Weight: 0.2},
		{From: 0, To: 2, Sign: Positive, Weight: 0.4},
		{From: 1, To: 2, Sign: Negative, Weight: 0.6},
		{From: 3, To: 2, Sign: Positive, Weight: 0.8},
	})
	st := g.Stats()
	if st.Nodes != 4 || st.Edges != 4 {
		t.Errorf("Stats nodes/edges = %d/%d, want 4/4", st.Nodes, st.Edges)
	}
	if st.PositiveEdges != 3 || st.NegativeEdges != 1 {
		t.Errorf("Stats +/- = %d/%d, want 3/1", st.PositiveEdges, st.NegativeEdges)
	}
	if st.PositiveRatio != 0.75 {
		t.Errorf("PositiveRatio = %g, want 0.75", st.PositiveRatio)
	}
	if st.MaxOutDegree != 2 {
		t.Errorf("MaxOutDegree = %d, want 2", st.MaxOutDegree)
	}
	if st.MaxInDegree != 3 {
		t.Errorf("MaxInDegree = %d, want 3", st.MaxInDegree)
	}
	if got, want := st.MeanWeight, 0.5; got != want {
		t.Errorf("MeanWeight = %g, want %g", got, want)
	}
}

func TestDegreePercentiles(t *testing.T) {
	// Node 0 has out-degree 3, node 1 has 1, the rest 0.
	g := mustGraph(t, 10, []Edge{
		{From: 0, To: 1, Sign: Positive, Weight: 0.5},
		{From: 0, To: 2, Sign: Positive, Weight: 0.5},
		{From: 0, To: 3, Sign: Positive, Weight: 0.5},
		{From: 1, To: 2, Sign: Positive, Weight: 0.5},
	})
	p50, p90, p99, max := g.DegreePercentiles()
	if p50 != 0 || max != 3 {
		t.Errorf("p50/max = %d/%d, want 0/3", p50, max)
	}
	// Sorted degrees: [0 x8, 1, 3]; with n=10 the p90 and p99 indexes
	// both land on the 9th entry.
	if p90 != 1 || p99 != 1 {
		t.Errorf("p90/p99 = %d/%d, want 1/1", p90, p99)
	}
	empty := NewBuilder(0).MustBuild()
	if a, b, c, d := empty.DegreePercentiles(); a+b+c+d != 0 {
		t.Error("empty graph percentiles not zero")
	}
}

func TestEmptyGraphStats(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	st := g.Stats()
	if st.Nodes != 0 || st.Edges != 0 || st.PositiveRatio != 0 {
		t.Errorf("empty Stats = %+v", st)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} (connected via directed edges, ignoring
	// direction) and {3,4}. Node 5 is isolated.
	g := mustGraph(t, 6, []Edge{
		{From: 0, To: 1, Sign: Positive, Weight: 0.5},
		{From: 2, To: 1, Sign: Negative, Weight: 0.5},
		{From: 4, To: 3, Sign: Positive, Weight: 0.5},
	})
	comps := ConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Errorf("component %d = %v, want %v", i, comps[i], want[i])
				break
			}
		}
	}
}

func TestConnectedComponentsPartition(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 50, 60)
		comps := ConnectedComponents(g)
		seen := make(map[int]bool)
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, u := range c {
				if seen[u] {
					return false // node in two components
				}
				seen[u] = true
			}
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInduce(t *testing.T) {
	g := mustGraph(t, 5, []Edge{
		{From: 0, To: 1, Sign: Positive, Weight: 0.1},
		{From: 1, To: 2, Sign: Negative, Weight: 0.2},
		{From: 2, To: 3, Sign: Positive, Weight: 0.3},
		{From: 3, To: 4, Sign: Positive, Weight: 0.4},
	})
	sub := Induce(g, []int{1, 2, 3})
	if sub.G.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d, want 3", sub.G.NumNodes())
	}
	if sub.G.NumEdges() != 2 {
		t.Fatalf("sub edges = %d, want 2", sub.G.NumEdges())
	}
	// Local IDs follow input order: 1->0, 2->1, 3->2.
	if e, ok := sub.G.HasEdge(0, 1); !ok || e.Sign != Negative || e.Weight != 0.2 {
		t.Errorf("induced edge (0,1) = %+v %v, want negative 0.2", e, ok)
	}
	if e, ok := sub.G.HasEdge(1, 2); !ok || e.Sign != Positive || e.Weight != 0.3 {
		t.Errorf("induced edge (1,2) = %+v %v, want positive 0.3", e, ok)
	}
	if l, ok := sub.Local(3); !ok || l != 2 {
		t.Errorf("Local(3) = %d %v, want 2 true", l, ok)
	}
	if _, ok := sub.Local(0); ok {
		t.Error("Local(0) should be absent")
	}
	if sub.Orig[1] != 2 {
		t.Errorf("Orig[1] = %d, want 2", sub.Orig[1])
	}
}

func TestJaccard(t *testing.T) {
	// v=0 follows {1,2,3}; u=4 has followers {2,3,5}.
	// Γout(0) = {1,2,3}, Γin(4) = {2,3,5}: inter = 2, union = 4 -> 0.5.
	g := mustGraph(t, 6, []Edge{
		{From: 0, To: 1, Sign: Positive, Weight: 0.5},
		{From: 0, To: 2, Sign: Positive, Weight: 0.5},
		{From: 0, To: 3, Sign: Positive, Weight: 0.5},
		{From: 2, To: 4, Sign: Positive, Weight: 0.5},
		{From: 3, To: 4, Sign: Negative, Weight: 0.5},
		{From: 5, To: 4, Sign: Positive, Weight: 0.5},
	})
	if got := Jaccard(g, 0, 4); got != 0.5 {
		t.Errorf("Jaccard(0,4) = %g, want 0.5", got)
	}
	// Node 1 has no out links and node 0 has no in links: union empty.
	if got := Jaccard(g, 1, 0); got != 0 {
		t.Errorf("Jaccard(1,0) = %g, want 0", got)
	}
}

func TestWeightByJaccard(t *testing.T) {
	g := randomGraph(7, 40, 120)
	rng := xrand.New(11)
	wg := WeightByJaccard(g, 0.1, rng)
	if wg.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", wg.NumEdges(), g.NumEdges())
	}
	zeroFallbacks := 0
	wg.Edges(func(e Edge) {
		if e.Weight < 0 || e.Weight > 1 {
			t.Errorf("weight out of range: %+v", e)
		}
		orig, ok := g.HasEdge(e.From, e.To)
		if !ok || orig.Sign != e.Sign {
			t.Errorf("topology or sign changed on (%d,%d)", e.From, e.To)
		}
		jc := Jaccard(g, e.From, e.To)
		if jc > 0 {
			if e.Weight != jc && jc <= 1 {
				t.Errorf("weight(%d,%d) = %g, want JC %g", e.From, e.To, e.Weight, jc)
			}
		} else {
			if e.Weight >= 0.1 {
				t.Errorf("fallback weight %g >= 0.1", e.Weight)
			}
			zeroFallbacks++
		}
	})
	if zeroFallbacks == 0 {
		t.Error("expected some zero-JC fallback weights in a sparse random graph")
	}
}

func TestJaccardRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 25, 70)
		ok := true
		g.Edges(func(e Edge) {
			jc := Jaccard(g, e.From, e.To)
			if jc < 0 || jc > 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStateHelpers(t *testing.T) {
	if !StatePositive.Active() || !StateNegative.Active() {
		t.Error("active states reported inactive")
	}
	if StateInactive.Active() || StateUnknown.Active() {
		t.Error("inactive/unknown reported active")
	}
	if StatePositive.Sign() != Positive || StateNegative.Sign() != Negative {
		t.Error("Sign conversion wrong")
	}
	tests := []struct {
		src  State
		sig  Sign
		want State
	}{
		{StatePositive, Positive, StatePositive},
		{StatePositive, Negative, StateNegative},
		{StateNegative, Positive, StateNegative},
		{StateNegative, Negative, StatePositive},
	}
	for _, tt := range tests {
		if got := StateOf(tt.src, tt.sig); got != tt.want {
			t.Errorf("StateOf(%v,%v) = %v, want %v", tt.src, tt.sig, got, tt.want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	pairs := map[State]string{
		StatePositive: "+1",
		StateNegative: "-1",
		StateInactive: "0",
		StateUnknown:  "?",
	}
	for s, want := range pairs {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
	if Positive.String() != "+" || Negative.String() != "-" {
		t.Error("Sign.String wrong")
	}
}

func TestStateOfPanicsOnInactive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StateOf(inactive) did not panic")
		}
	}()
	StateOf(StateInactive, Positive)
}

func TestCommonNeighborsAndAdamicAdar(t *testing.T) {
	// v=0 follows {1,2}; u=3 has followers {1,2,4}: two common neighbors.
	g := mustGraph(t, 5, []Edge{
		{From: 0, To: 1, Sign: Positive, Weight: 0.5},
		{From: 0, To: 2, Sign: Positive, Weight: 0.5},
		{From: 1, To: 3, Sign: Positive, Weight: 0.5},
		{From: 2, To: 3, Sign: Positive, Weight: 0.5},
		{From: 4, To: 3, Sign: Positive, Weight: 0.5},
	})
	if got := CommonNeighbors(g, 0, 3); got != 2 {
		t.Errorf("CommonNeighbors = %d, want 2", got)
	}
	// Node 1 and 2 each have degree 2 -> AA = 2/log(2).
	want := 2 / math.Log(2)
	if got := AdamicAdar(g, 0, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("AdamicAdar = %g, want %g", got, want)
	}
	if got := CommonNeighbors(g, 4, 0); got != 0 {
		t.Errorf("no-overlap CommonNeighbors = %d", got)
	}
	if got := AdamicAdar(g, 4, 0); got != 0 {
		t.Errorf("no-overlap AdamicAdar = %g", got)
	}
}

func TestWeightBySchemes(t *testing.T) {
	g := randomGraph(13, 60, 240)
	for _, scheme := range []WeightScheme{SchemeJaccard, SchemeAdamicAdar, SchemeCommonNeighbors} {
		wg := WeightBy(g, scheme, 0.1, xrand.New(5))
		if wg.NumEdges() != g.NumEdges() {
			t.Fatalf("scheme %d changed edge count", scheme)
		}
		maxW := 0.0
		wg.Edges(func(e Edge) {
			if e.Weight < 0 || e.Weight > 1 {
				t.Errorf("scheme %d weight %g out of range", scheme, e.Weight)
			}
			if e.Weight > maxW {
				maxW = e.Weight
			}
			orig, ok := g.HasEdge(e.From, e.To)
			if !ok || orig.Sign != e.Sign {
				t.Errorf("scheme %d changed topology/sign", scheme)
			}
		})
		if maxW == 0 {
			t.Errorf("scheme %d produced all-zero weights", scheme)
		}
	}
}
