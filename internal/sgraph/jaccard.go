package sgraph

import (
	"math"

	"repro/internal/xrand"
)

// Jaccard returns the Jaccard coefficient of social link (v, u) per the
// paper's experimental setup: |Γout(v) ∩ Γin(u)| / |Γout(v) ∪ Γin(u)|,
// where Γout(v) is the set of users v follows and Γin(u) the followers of
// u. Returns 0 when both neighborhoods are empty.
func Jaccard(g *Graph, v, u int) float64 {
	// Out-neighbors of v are sorted by target; in-neighbors of u sorted by
	// source. Walk both in one merge pass.
	vo := g.outIdx[v]
	ui := g.inIdx[u]
	inter := 0
	i, j := 0, 0
	for i < len(vo) && j < len(ui) {
		a := g.edges[vo[i]].To
		b := g.edges[ui[j]].From
		switch {
		case a == b:
			inter++
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	union := len(vo) + len(ui) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// CommonNeighbors returns |Γout(v) ∩ Γin(u)| for social link (v, u) — the
// raw intimacy count underlying the Jaccard coefficient.
func CommonNeighbors(g *Graph, v, u int) int {
	vo := g.outIdx[v]
	ui := g.inIdx[u]
	inter := 0
	i, j := 0, 0
	for i < len(vo) && j < len(ui) {
		a := g.edges[vo[i]].To
		b := g.edges[ui[j]].From
		switch {
		case a == b:
			inter++
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return inter
}

// AdamicAdar returns the Adamic-Adar index of social link (v, u): the sum
// over common neighbors w of 1/log(deg(w)), where deg is total (in+out)
// degree — frequent intermediaries count less (Liben-Nowell & Kleinberg
// 2007, the paper's reference [18] for link weighting).
func AdamicAdar(g *Graph, v, u int) float64 {
	vo := g.outIdx[v]
	ui := g.inIdx[u]
	sum := 0.0
	i, j := 0, 0
	for i < len(vo) && j < len(ui) {
		a := g.edges[vo[i]].To
		b := g.edges[ui[j]].From
		switch {
		case a == b:
			if d := g.OutDegree(a) + g.InDegree(a); d > 1 {
				sum += 1 / math.Log(float64(d))
			} else {
				sum += 1 / math.Log(2)
			}
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return sum
}

// WeightScheme selects how link weights are derived from topology.
type WeightScheme int

const (
	// SchemeJaccard is the paper's choice (Sec. IV-B3).
	SchemeJaccard WeightScheme = iota
	// SchemeAdamicAdar normalizes the Adamic-Adar index by its graph
	// maximum, keeping weights in [0, 1].
	SchemeAdamicAdar
	// SchemeCommonNeighbors normalizes the raw common-neighbor count by
	// its graph maximum.
	SchemeCommonNeighbors
)

// WeightBy re-weights the social graph with the chosen topological scheme,
// using the uniform [0, fallbackMax) fallback for zero-score links exactly
// as WeightByJaccard does.
func WeightBy(g *Graph, scheme WeightScheme, fallbackMax float64, rng *xrand.Rand) *Graph {
	if scheme == SchemeJaccard {
		return WeightByJaccard(g, fallbackMax, rng)
	}
	raw := make([]float64, g.NumEdges())
	maxRaw := 0.0
	for i := range g.edges {
		e := g.edges[i]
		switch scheme {
		case SchemeAdamicAdar:
			raw[i] = AdamicAdar(g, e.From, e.To)
		default:
			raw[i] = float64(CommonNeighbors(g, e.From, e.To))
		}
		if raw[i] > maxRaw {
			maxRaw = raw[i]
		}
	}
	b := NewBuilder(g.NumNodes())
	for i := range g.edges {
		e := g.edges[i]
		w := 0.0
		if maxRaw > 0 {
			w = raw[i] / maxRaw
		}
		if w == 0 {
			w = rng.Range(0, fallbackMax)
		}
		b.AddEdge(e.From, e.To, e.Sign, w)
	}
	return b.MustBuild()
}

// WeightByJaccard returns a copy of the social graph g whose link weights
// are replaced by Jaccard coefficients, with zero-coefficient links drawn
// uniformly from [0, fallbackMax) — the paper uses fallbackMax = 0.1
// ("for links whose JC scores are 0, we randomly assign their weight with
// values randomly sampled from uniform distribution in range [0, 0.1]").
// Signs and topology are preserved.
func WeightByJaccard(g *Graph, fallbackMax float64, rng *xrand.Rand) *Graph {
	b := NewBuilder(g.NumNodes())
	for i := range g.edges {
		e := g.edges[i]
		w := Jaccard(g, e.From, e.To)
		if w == 0 {
			w = rng.Range(0, fallbackMax)
		}
		if w > 1 {
			w = 1
		}
		b.AddEdge(e.From, e.To, e.Sign, w)
	}
	return b.MustBuild()
}
