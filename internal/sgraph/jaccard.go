package sgraph

import (
	"context"
	"math"

	"repro/internal/par"
	"repro/internal/xrand"
)

// Jaccard returns the Jaccard coefficient of social link (v, u) per the
// paper's experimental setup: |Γout(v) ∩ Γin(u)| / |Γout(v) ∪ Γin(u)|,
// where Γout(v) is the set of users v follows and Γin(u) the followers of
// u. Returns 0 when both neighborhoods are empty.
func Jaccard(g *Graph, v, u int) float64 {
	// Out-neighbors of v are sorted by target; in-neighbors of u sorted by
	// source. Walk both in one merge pass.
	vo := g.out(v)
	ui := g.in(u)
	inter := 0
	i, j := 0, 0
	for i < len(vo) && j < len(ui) {
		a := int(g.edgeTo[vo[i]])
		b := int(g.edgeFrom[ui[j]])
		switch {
		case a == b:
			inter++
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	union := len(vo) + len(ui) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// CommonNeighbors returns |Γout(v) ∩ Γin(u)| for social link (v, u) — the
// raw intimacy count underlying the Jaccard coefficient.
func CommonNeighbors(g *Graph, v, u int) int {
	vo := g.out(v)
	ui := g.in(u)
	inter := 0
	i, j := 0, 0
	for i < len(vo) && j < len(ui) {
		a := int(g.edgeTo[vo[i]])
		b := int(g.edgeFrom[ui[j]])
		switch {
		case a == b:
			inter++
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return inter
}

// AdamicAdar returns the Adamic-Adar index of social link (v, u): the sum
// over common neighbors w of 1/log(deg(w)), where deg is total (in+out)
// degree — frequent intermediaries count less (Liben-Nowell & Kleinberg
// 2007, the paper's reference [18] for link weighting).
func AdamicAdar(g *Graph, v, u int) float64 {
	vo := g.out(v)
	ui := g.in(u)
	sum := 0.0
	i, j := 0, 0
	for i < len(vo) && j < len(ui) {
		a := int(g.edgeTo[vo[i]])
		b := int(g.edgeFrom[ui[j]])
		switch {
		case a == b:
			if d := g.OutDegree(a) + g.InDegree(a); d > 1 {
				sum += 1 / math.Log(float64(d))
			} else {
				sum += 1 / math.Log(2)
			}
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return sum
}

// neighborIndex materializes, once per weighting pass, the sorted
// out-neighbor and in-neighbor ID lists the topological scores merge per
// edge. The per-pair functions above walk g.outIdx/g.inIdx and dereference
// the edge array at every merge step; over a whole graph that indirection
// dominates workload generation, so WeightBy/WeightByJaccard flatten the
// neighborhoods into two contiguous arrays up front and score all edges
// against those.
type neighborIndex struct {
	out, in [][]int32
}

func newNeighborIndex(g *Graph) *neighborIndex {
	idx := &neighborIndex{
		out: make([][]int32, g.n),
		in:  make([][]int32, g.n),
	}
	outFlat := make([]int32, g.NumEdges())
	inFlat := make([]int32, g.NumEdges())
	opos, ipos := 0, 0
	for v := 0; v < g.n; v++ {
		ov := g.out(v)
		lst := outFlat[opos : opos+len(ov)]
		for i, ei := range ov {
			lst[i] = g.edgeTo[ei]
		}
		idx.out[v] = lst
		opos += len(lst)
		iv := g.in(v)
		lst = inFlat[ipos : ipos+len(iv)]
		for i, ei := range iv {
			lst[i] = g.edgeFrom[ei]
		}
		idx.in[v] = lst
		ipos += len(lst)
	}
	return idx
}

// jaccard is Jaccard on the flattened index.
func (idx *neighborIndex) jaccard(v, u int) float64 {
	vo, ui := idx.out[v], idx.in[u]
	inter := 0
	i, j := 0, 0
	for i < len(vo) && j < len(ui) {
		a, b := vo[i], ui[j]
		switch {
		case a == b:
			inter++
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	union := len(vo) + len(ui) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// common is CommonNeighbors on the flattened index.
func (idx *neighborIndex) common(v, u int) int {
	vo, ui := idx.out[v], idx.in[u]
	inter := 0
	i, j := 0, 0
	for i < len(vo) && j < len(ui) {
		a, b := vo[i], ui[j]
		switch {
		case a == b:
			inter++
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return inter
}

// adamicAdar is AdamicAdar on the flattened index, with 1/log(deg) terms
// precomputed once per node in invLogDeg.
func (idx *neighborIndex) adamicAdar(invLogDeg []float64, v, u int) float64 {
	vo, ui := idx.out[v], idx.in[u]
	sum := 0.0
	i, j := 0, 0
	for i < len(vo) && j < len(ui) {
		a, b := vo[i], ui[j]
		switch {
		case a == b:
			sum += invLogDeg[a]
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return sum
}

// invLogDegrees precomputes the Adamic-Adar 1/log(deg) contribution per
// node, matching AdamicAdar's degree floor.
func (idx *neighborIndex) invLogDegrees() []float64 {
	out := make([]float64, len(idx.out))
	for v := range out {
		if d := len(idx.out[v]) + len(idx.in[v]); d > 1 {
			out[v] = 1 / math.Log(float64(d))
		} else {
			out[v] = 1 / math.Log(2)
		}
	}
	return out
}

// rawScores computes the scheme's raw score for every edge, fanning
// contiguous edge chunks across GOMAXPROCS workers. Each slot is written
// by exactly one worker and no RNG is involved, so the result is identical
// to the serial pass.
func rawScores(g *Graph, scheme WeightScheme) []float64 {
	idx := newNeighborIndex(g)
	var invLogDeg []float64
	if scheme == SchemeAdamicAdar {
		invLogDeg = idx.invLogDegrees()
	}
	raw := make([]float64, g.NumEdges())
	workers := par.Workers(0)
	_ = par.ForEach(context.Background(), workers, workers, func(_, chunk int) error {
		lo := chunk * len(raw) / workers
		hi := (chunk + 1) * len(raw) / workers
		for i := lo; i < hi; i++ {
			from, to := int(g.edgeFrom[i]), int(g.edgeTo[i])
			switch scheme {
			case SchemeAdamicAdar:
				raw[i] = idx.adamicAdar(invLogDeg, from, to)
			case SchemeCommonNeighbors:
				raw[i] = float64(idx.common(from, to))
			default:
				raw[i] = idx.jaccard(from, to)
			}
		}
		return nil
	})
	return raw
}

// WeightScheme selects how link weights are derived from topology.
type WeightScheme int

const (
	// SchemeJaccard is the paper's choice (Sec. IV-B3).
	SchemeJaccard WeightScheme = iota
	// SchemeAdamicAdar normalizes the Adamic-Adar index by its graph
	// maximum, keeping weights in [0, 1].
	SchemeAdamicAdar
	// SchemeCommonNeighbors normalizes the raw common-neighbor count by
	// its graph maximum.
	SchemeCommonNeighbors
)

// WeightBy re-weights the social graph with the chosen topological scheme,
// using the uniform [0, fallbackMax) fallback for zero-score links exactly
// as WeightByJaccard does.
func WeightBy(g *Graph, scheme WeightScheme, fallbackMax float64, rng *xrand.Rand) *Graph {
	if scheme == SchemeJaccard {
		return WeightByJaccard(g, fallbackMax, rng)
	}
	raw := rawScores(g, scheme)
	maxRaw := 0.0
	for _, r := range raw {
		if r > maxRaw {
			maxRaw = r
		}
	}
	// The builder pass stays serial: the zero-score RNG fallback must draw
	// in edge order to keep re-weighted graphs bit-identical run to run.
	b := NewBuilder(g.NumNodes())
	for i := range raw {
		w := 0.0
		if maxRaw > 0 {
			w = raw[i] / maxRaw
		}
		if w == 0 {
			w = rng.Range(0, fallbackMax)
		}
		b.AddEdge(int(g.edgeFrom[i]), int(g.edgeTo[i]), Sign(g.edgeSign[i]), w)
	}
	return b.MustBuild()
}

// WeightByJaccard returns a copy of the social graph g whose link weights
// are replaced by Jaccard coefficients, with zero-coefficient links drawn
// uniformly from [0, fallbackMax) — the paper uses fallbackMax = 0.1
// ("for links whose JC scores are 0, we randomly assign their weight with
// values randomly sampled from uniform distribution in range [0, 0.1]").
// Signs and topology are preserved.
func WeightByJaccard(g *Graph, fallbackMax float64, rng *xrand.Rand) *Graph {
	raw := rawScores(g, SchemeJaccard)
	// Serial builder pass: RNG fallbacks must be drawn in edge order so the
	// re-weighted graph is bit-identical run to run (see WeightBy).
	b := NewBuilder(g.NumNodes())
	for i := range raw {
		w := raw[i]
		if w == 0 {
			w = rng.Range(0, fallbackMax)
		}
		if w > 1 {
			w = 1
		}
		b.AddEdge(int(g.edgeFrom[i]), int(g.edgeTo[i]), Sign(g.edgeSign[i]), w)
	}
	return b.MustBuild()
}
