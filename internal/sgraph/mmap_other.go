//go:build !unix

package sgraph

import "errors"

// mapping is unavailable on this platform; LoadSnapshot always takes the
// copy-on-read path.
type mapping struct {
	data []byte
}

var errNoMmap = errors.New("sgraph: mmap unsupported on this platform")

func openMapping(path string) (*mapping, error) { return nil, errNoMmap }

func (mp *mapping) release() {}
