//go:build unix

package sgraph

import (
	"os"
	"runtime"
	"syscall"
)

// mapping is a read-only memory-mapped snapshot file. The Graph loaded from
// it keeps a reference so the mapping outlives every aliased array view; a
// finalizer unmaps once the graph (and thus the mapping) becomes
// unreachable.
type mapping struct {
	data []byte
}

func openMapping(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	mp := &mapping{data: data}
	runtime.SetFinalizer(mp, (*mapping).release)
	return mp, nil
}

// release unmaps the file. Safe to call more than once.
func (mp *mapping) release() {
	if mp.data != nil {
		data := mp.data
		mp.data = nil
		runtime.SetFinalizer(mp, nil)
		_ = syscall.Munmap(data)
	}
}
