package sgraph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// Snapshot format ("RIDG" v1)
//
// A snapshot is the flat CSR arrays of a built Graph, dumped verbatim so a
// loader can alias typed views straight over the mapped file. Layout:
//
//	offset  size  field
//	0       4     magic "RIDG"
//	4       2     version (LE u16, currently 1)
//	6       2     flags (reserved, 0)
//	8       8     node count (LE u64)
//	16      8     edge count (LE u64)
//	24      8     payload length in bytes (LE u64)
//	32      4     CRC-32 (IEEE) of the payload
//	36      28    reserved (zero)
//	64      ...   payload
//
// The 64-byte header keeps the payload 8-byte aligned relative to the file
// start; mmap bases are page aligned, so every section below is safely
// addressable as []int32 / []float64 without copying. Payload sections, in
// order, each padded to an 8-byte boundary, all little-endian:
//
//	edgeFrom   m × int32
//	edgeTo     m × int32
//	edgeSign   m × int8
//	edgeWeight m × float64
//	outStart   (n+1) × int32
//	outList    m × int32
//	inStart    (n+1) × int32
//	inList     m × int32
//
// Loads verify magic, version, sizes, and checksum, then run a structural
// self-check (monotone offsets, in-range IDs, sorted adjacency) so a
// corrupt or truncated file is rejected rather than served as a partial
// graph. On failure or on platforms without mmap, LoadSnapshot falls back
// to a copy-on-read decode of the same bytes.

const (
	snapMagic      = "RIDG"
	snapVersion    = 1
	snapHeaderSize = 64
)

// ErrBadSnapshot is wrapped by every snapshot decode failure (bad magic,
// version, size, checksum, or structural inconsistency).
var ErrBadSnapshot = errors.New("sgraph: bad snapshot")

// hostLittle reports whether the host is little-endian; zero-copy aliasing
// is only valid when the in-memory representation matches the on-disk one.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func pad8(n int) int { return (n + 7) &^ 7 }

// snapSections describes the byte offset and length of each payload section
// for a graph with n nodes and m edges.
type snapSections struct {
	edgeFrom, edgeTo, edgeSign, edgeWeight sectionSpan
	outStart, outList, inStart, inList     sectionSpan
	total                                  int
}

type sectionSpan struct{ off, len int }

func sectionsFor(n, m int) snapSections {
	var s snapSections
	off := 0
	place := func(size int) sectionSpan {
		sp := sectionSpan{off: off, len: size}
		off += pad8(size)
		return sp
	}
	s.edgeFrom = place(4 * m)
	s.edgeTo = place(4 * m)
	s.edgeSign = place(m)
	s.edgeWeight = place(8 * m)
	s.outStart = place(4 * (n + 1))
	s.outList = place(4 * m)
	s.inStart = place(4 * (n + 1))
	s.inList = place(4 * m)
	s.total = off
	return s
}

// int32Bytes returns the raw little-endian bytes of v, copying only on
// big-endian hosts.
func int32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
	}
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

func float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
	}
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func int8Bytes(v []int8) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v))
}

// encodePayload serializes the graph's arrays into one contiguous payload.
func (g *Graph) encodePayload() []byte {
	m := g.NumEdges()
	sec := sectionsFor(g.n, m)
	buf := make([]byte, sec.total)
	copy(buf[sec.edgeFrom.off:], int32Bytes(g.edgeFrom))
	copy(buf[sec.edgeTo.off:], int32Bytes(g.edgeTo))
	copy(buf[sec.edgeSign.off:], int8Bytes(g.edgeSign))
	copy(buf[sec.edgeWeight.off:], float64Bytes(g.edgeWeight))
	copy(buf[sec.outStart.off:], int32Bytes(g.outStart))
	copy(buf[sec.outList.off:], int32Bytes(g.outList))
	copy(buf[sec.inStart.off:], int32Bytes(g.inStart))
	copy(buf[sec.inList.off:], int32Bytes(g.inList))
	return buf
}

// WriteSnapshot writes the graph in snapshot format. The output is
// deterministic: the same graph always produces the same bytes.
func (g *Graph) WriteSnapshot(w io.Writer) error {
	payload := g.encodePayload()
	var hdr [snapHeaderSize]byte
	copy(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], snapVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[32:36], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// parseSnapHeader validates the fixed header and returns node/edge counts
// and the payload length.
func parseSnapHeader(hdr []byte) (n, m, payloadLen int, crc uint32, err error) {
	if len(hdr) < snapHeaderSize {
		return 0, 0, 0, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadSnapshot, len(hdr))
	}
	if string(hdr[0:4]) != snapMagic {
		return 0, 0, 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != snapVersion {
		return 0, 0, 0, 0, fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadSnapshot, v, snapVersion)
	}
	n64 := binary.LittleEndian.Uint64(hdr[8:16])
	m64 := binary.LittleEndian.Uint64(hdr[16:24])
	p64 := binary.LittleEndian.Uint64(hdr[24:32])
	if n64 > math.MaxInt32 || m64 > math.MaxInt32 || p64 > math.MaxInt32*32 {
		return 0, 0, 0, 0, fmt.Errorf("%w: implausible sizes n=%d m=%d payload=%d", ErrBadSnapshot, n64, m64, p64)
	}
	n, m, payloadLen = int(n64), int(m64), int(p64)
	if want := sectionsFor(n, m).total; payloadLen != want {
		return 0, 0, 0, 0, fmt.Errorf("%w: payload length %d, want %d for n=%d m=%d", ErrBadSnapshot, payloadLen, want, n, m)
	}
	return n, m, payloadLen, binary.LittleEndian.Uint32(hdr[32:36]), nil
}

// aliasInt32 returns payload[sp.off:] viewed as count int32 values without
// copying. Caller guarantees the host is little-endian and the span is in
// bounds.
func aliasInt32(payload []byte, sp sectionSpan, count int) []int32 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&payload[sp.off])), count)
}

func aliasFloat64(payload []byte, sp sectionSpan, count int) []float64 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&payload[sp.off])), count)
}

func aliasInt8(payload []byte, sp sectionSpan, count int) []int8 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&payload[sp.off])), count)
}

// copyInt32 decodes count little-endian int32 values into a fresh slice.
func copyInt32(payload []byte, sp sectionSpan, count int) []int32 {
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(payload[sp.off+4*i:]))
	}
	return out
}

func copyFloat64(payload []byte, sp sectionSpan, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[sp.off+8*i:]))
	}
	return out
}

func copyInt8(payload []byte, sp sectionSpan, count int) []int8 {
	out := make([]int8, count)
	for i := range out {
		out[i] = int8(payload[sp.off+i])
	}
	return out
}

// decodeSnapshot reconstructs a Graph from header+payload bytes. When
// zeroCopy is true the returned graph's arrays alias data (which must then
// outlive the graph — the caller attaches the backing mapping).
func decodeSnapshot(data []byte, zeroCopy bool) (*Graph, error) {
	n, m, payloadLen, crc, err := parseSnapHeader(data)
	if err != nil {
		return nil, err
	}
	if len(data) < snapHeaderSize+payloadLen {
		return nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrBadSnapshot, len(data)-snapHeaderSize, payloadLen)
	}
	payload := data[snapHeaderSize : snapHeaderSize+payloadLen]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrBadSnapshot, got, crc)
	}
	sec := sectionsFor(n, m)
	g := &Graph{n: n}
	if zeroCopy && hostLittle {
		g.edgeFrom = aliasInt32(payload, sec.edgeFrom, m)
		g.edgeTo = aliasInt32(payload, sec.edgeTo, m)
		g.edgeSign = aliasInt8(payload, sec.edgeSign, m)
		g.edgeWeight = aliasFloat64(payload, sec.edgeWeight, m)
		g.outStart = aliasInt32(payload, sec.outStart, n+1)
		g.outList = aliasInt32(payload, sec.outList, m)
		g.inStart = aliasInt32(payload, sec.inStart, n+1)
		g.inList = aliasInt32(payload, sec.inList, m)
	} else {
		g.edgeFrom = copyInt32(payload, sec.edgeFrom, m)
		g.edgeTo = copyInt32(payload, sec.edgeTo, m)
		g.edgeSign = copyInt8(payload, sec.edgeSign, m)
		g.edgeWeight = copyFloat64(payload, sec.edgeWeight, m)
		g.outStart = copyInt32(payload, sec.outStart, n+1)
		g.outList = copyInt32(payload, sec.outList, m)
		g.inStart = copyInt32(payload, sec.inStart, n+1)
		g.inList = copyInt32(payload, sec.inList, m)
	}
	if err := g.validateStructure(); err != nil {
		return nil, err
	}
	return g, nil
}

// validateStructure checks the CSR invariants a correct Build always
// produces, so no decode path can hand out a graph that would index out of
// bounds or violate the sorted-adjacency contract downstream code relies on.
func (g *Graph) validateStructure() error {
	n, m := g.n, len(g.edgeTo)
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
	}
	if len(g.edgeFrom) != m || len(g.edgeSign) != m || len(g.edgeWeight) != m ||
		len(g.outList) != m || len(g.inList) != m ||
		len(g.outStart) != n+1 || len(g.inStart) != n+1 {
		return bad("inconsistent array lengths")
	}
	for i := 0; i < m; i++ {
		if u := g.edgeFrom[i]; u < 0 || int(u) >= n {
			return bad("edge %d: from %d out of range", i, u)
		}
		if v := g.edgeTo[i]; v < 0 || int(v) >= n {
			return bad("edge %d: to %d out of range", i, v)
		}
		if s := g.edgeSign[i]; s != int8(Positive) && s != int8(Negative) {
			return bad("edge %d: sign %d", i, s)
		}
		if w := g.edgeWeight[i]; !(w >= 0 && w <= 1) { // also rejects NaN
			return bad("edge %d: weight %g", i, w)
		}
	}
	checkAdj := func(start, list []int32, key []int32, name string) error {
		if start[0] != 0 || int(start[n]) != m {
			return bad("%s offsets do not span the edge array", name)
		}
		// Offsets must be validated in full before any slicing below.
		for u := 0; u < n; u++ {
			if start[u+1] < start[u] || int(start[u+1]) > m {
				return bad("%s offsets not monotone at node %d", name, u)
			}
		}
		for u := 0; u < n; u++ {
			prev := int32(-1)
			for _, ei := range list[start[u]:start[u+1]] {
				if ei < 0 || int(ei) >= m {
					return bad("%s list entry %d out of range at node %d", name, ei, u)
				}
				if key[ei] <= prev {
					return bad("%s list not strictly sorted at node %d", name, u)
				}
				prev = key[ei]
			}
		}
		return nil
	}
	if err := checkAdj(g.outStart, g.outList, g.edgeTo, "out"); err != nil {
		return err
	}
	// In-lists sort by source and may repeat it never (one edge per ordered
	// pair), so strict ordering holds there too.
	if err := checkAdj(g.inStart, g.inList, g.edgeFrom, "in"); err != nil {
		return err
	}
	// Every out-list entry must actually start at its node.
	for u := 0; u < n; u++ {
		for _, ei := range g.out(u) {
			if int(g.edgeFrom[ei]) != u {
				return bad("out list of node %d references edge %d from node %d", u, ei, g.edgeFrom[ei])
			}
		}
		for _, ei := range g.in(u) {
			if int(g.edgeTo[ei]) != u {
				return bad("in list of node %d references edge %d to node %d", u, ei, g.edgeTo[ei])
			}
		}
	}
	return nil
}

// ReadSnapshot decodes a snapshot from r with copy-on-read semantics. The
// returned graph owns its arrays.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data, false)
}

// WriteSnapshotFile writes the snapshot to path via a same-directory temp
// file and rename, so concurrent loaders never observe a partial file.
func WriteSnapshotFile(g *Graph, path string) error {
	tmp, err := os.CreateTemp(fileDir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := g.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func fileDir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i]
		}
	}
	return "."
}

// LoadSnapshot opens a snapshot file as a Graph. On little-endian platforms
// with mmap support the arrays are zero-copy views over the mapped file
// (the mapping is released when the graph is garbage collected); otherwise,
// or if mapping fails, the file is read and decoded into fresh arrays. Any
// validation failure returns an error wrapping ErrBadSnapshot — a partial
// or corrupt graph is never returned.
//
// Because the arrays may alias the mapping, raw slices obtained from the
// graph must not outlive it: keep the *Graph (or a CSRView, which pins it)
// reachable for as long as any aliased slice is in use.
func LoadSnapshot(path string) (*Graph, error) {
	if hostLittle {
		if mp, err := openMapping(path); err == nil {
			g, derr := decodeSnapshot(mp.data, true)
			if derr == nil {
				g.snap = mp
				return g, nil
			}
			mp.release()
			// Decode errors are authoritative (bad bytes, not a bad map);
			// don't retry via the copy path on the same bytes.
			return nil, derr
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// Mapped reports whether the graph's arrays alias a memory-mapped snapshot
// (as opposed to heap-owned arrays). Exposed for tests and diagnostics.
func (g *Graph) Mapped() bool { return g.snap != nil }
