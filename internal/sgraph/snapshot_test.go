package sgraph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the snapshot golden fixture")

// sameGraph asserts two graphs are observationally identical through the
// public API.
func sameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size mismatch: got %d/%d nodes/edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for i := 0; i < want.NumEdges(); i++ {
		if want.Edge(i) != got.Edge(i) {
			t.Fatalf("edge %d: got %+v, want %+v", i, got.Edge(i), want.Edge(i))
		}
	}
	for u := 0; u < want.NumNodes(); u++ {
		if !reflect.DeepEqual(want.OutEdges(u), got.OutEdges(u)) {
			t.Fatalf("out edges of %d differ", u)
		}
		if !reflect.DeepEqual(want.InEdges(u), got.InEdges(u)) {
			t.Fatalf("in edges of %d differ", u)
		}
	}
}

func snapshotBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := randomGraph(7, 200, 900)
	raw := snapshotBytes(t, g)
	got, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
	// Re-encoding the decoded graph must reproduce the bytes exactly.
	if !bytes.Equal(raw, snapshotBytes(t, got)) {
		t.Fatal("snapshot encoding is not a fixed point of decode")
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	got, err := ReadSnapshot(bytes.NewReader(snapshotBytes(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Fatalf("got %d nodes %d edges", got.NumNodes(), got.NumEdges())
	}
}

func TestLoadSnapshotZeroCopy(t *testing.T) {
	g := randomGraph(11, 100, 400)
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := WriteSnapshotFile(g, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
	if hostLittle && !got.Mapped() {
		t.Error("expected a zero-copy mapped load on this platform")
	}
	// The mapped graph must survive and stay correct after arbitrary reads.
	if st := got.Stats(); st.Edges != g.NumEdges() {
		t.Fatalf("stats over mapped graph: %+v", st)
	}
}

func TestLoadSnapshotMissingFile(t *testing.T) {
	if _, err := LoadSnapshot(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("want error for missing file")
	}
}

// corrupt writes a mutated copy of raw and asserts both decode paths reject
// it with ErrBadSnapshot.
func wantBadSnapshot(t *testing.T, raw []byte) {
	t.Helper()
	if _, err := ReadSnapshot(bytes.NewReader(raw)); !errorsIsBad(err) {
		t.Fatalf("ReadSnapshot: got %v, want ErrBadSnapshot", err)
	}
	path := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); !errorsIsBad(err) {
		t.Fatalf("LoadSnapshot: got %v, want ErrBadSnapshot", err)
	}
}

func errorsIsBad(err error) bool { return errors.Is(err, ErrBadSnapshot) }

func TestSnapshotRejectsTruncation(t *testing.T) {
	raw := snapshotBytes(t, randomGraph(3, 50, 200))
	for _, cut := range []int{0, 3, snapHeaderSize - 1, snapHeaderSize, len(raw) / 2, len(raw) - 1} {
		wantBadSnapshot(t, raw[:cut])
	}
}

func TestSnapshotRejectsWrongMagic(t *testing.T) {
	raw := snapshotBytes(t, randomGraph(3, 50, 200))
	bad := append([]byte(nil), raw...)
	copy(bad, "NOPE")
	wantBadSnapshot(t, bad)
}

func TestSnapshotRejectsWrongVersion(t *testing.T) {
	raw := snapshotBytes(t, randomGraph(3, 50, 200))
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint16(bad[4:6], snapVersion+1)
	wantBadSnapshot(t, bad)
}

func TestSnapshotRejectsCorruptPayload(t *testing.T) {
	raw := snapshotBytes(t, randomGraph(3, 50, 200))
	// Flip one byte in the middle of the payload; the checksum must catch it.
	bad := append([]byte(nil), raw...)
	bad[snapHeaderSize+len(bad)/3] ^= 0xFF
	wantBadSnapshot(t, bad)
}

// TestSnapshotRejectsStructuralCorruption forges a snapshot whose checksum
// is valid but whose CSR arrays are internally inconsistent — the
// structural self-check must refuse it rather than hand out a graph that
// indexes out of bounds.
func TestSnapshotRejectsStructuralCorruption(t *testing.T) {
	g := randomGraph(5, 40, 160)
	mutations := map[string]func(payload []byte, sec snapSections){
		"edge target out of range": func(p []byte, sec snapSections) {
			binary.LittleEndian.PutUint32(p[sec.edgeTo.off:], uint32(g.NumNodes()))
		},
		"negative from": func(p []byte, sec snapSections) {
			binary.LittleEndian.PutUint32(p[sec.edgeFrom.off:], ^uint32(0))
		},
		"zero sign": func(p []byte, sec snapSections) {
			p[sec.edgeSign.off] = 0
		},
		"NaN weight": func(p []byte, sec snapSections) {
			binary.LittleEndian.PutUint64(p[sec.edgeWeight.off:], math.Float64bits(math.NaN()))
		},
		"non-monotone outStart": func(p []byte, sec snapSections) {
			binary.LittleEndian.PutUint32(p[sec.outStart.off+4:], ^uint32(0)>>1)
		},
		"outList entry out of range": func(p []byte, sec snapSections) {
			binary.LittleEndian.PutUint32(p[sec.outList.off:], uint32(g.NumEdges()))
		},
		"inStart does not span edges": func(p []byte, sec snapSections) {
			binary.LittleEndian.PutUint32(p[sec.inStart.off+4*g.NumNodes():], uint32(g.NumEdges()-1))
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			raw := snapshotBytes(t, g)
			sec := sectionsFor(g.NumNodes(), g.NumEdges())
			payload := raw[snapHeaderSize:]
			mutate(payload, sec)
			binary.LittleEndian.PutUint32(raw[32:36], crc32.ChecksumIEEE(payload))
			wantBadSnapshot(t, raw)
		})
	}
}

// TestSnapshotGolden pins the wire format byte for byte: a change to the
// header, section order, padding, or endianness shows up as a diff against
// the committed fixture. Regenerate deliberately with:
// go test ./internal/sgraph -run SnapshotGolden -update
func TestSnapshotGolden(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1, Positive, 0.5)
	b.AddEdge(1, 2, Negative, 0.25)
	b.AddEdge(2, 0, Positive, 1)
	b.AddEdge(3, 4, Negative, 0)
	b.AddEdge(4, 3, Positive, 0.125)
	b.AddEdge(0, 5, Positive, 0.75)
	g := b.MustBuild()
	got := snapshotBytes(t, g)
	path := filepath.Join("testdata", "graph_golden.snap")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot bytes drifted from golden fixture (%d vs %d bytes)", len(got), len(want))
	}
	back, err := ReadSnapshot(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, back)
}

func BenchmarkSnapshotLoad(b *testing.B) {
	g := randomGraph(9, 5000, 40000)
	path := filepath.Join(b.TempDir(), "g.snap")
	if err := WriteSnapshotFile(g, path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gg, err := LoadSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		if gg.NumEdges() != g.NumEdges() {
			b.Fatal("bad load")
		}
	}
}
