package sgraph

import "fmt"

// State is a node's belief state in the infected network snapshot, drawn
// from {-1, +1, 0, ?} per the paper's problem setting.
type State int8

// Node states. StateUnknown models nodes whose opinion could not be
// observed ("?" in the paper); StateInactive is a node the rumor has not
// reached.
const (
	StateNegative State = -1 // disagrees with the rumor
	StatePositive State = +1 // agrees with the rumor
	StateInactive State = 0  // no opinion / not infected
	StateUnknown  State = 2  // opinion exists but is unobserved
)

// Active reports whether the node holds an opinion (+1 or -1).
func (s State) Active() bool { return s == StatePositive || s == StateNegative }

// Sign converts an active state to its Sign. It panics on inactive or
// unknown states; callers must check Active first.
func (s State) Sign() Sign {
	switch s {
	case StatePositive:
		return Positive
	case StateNegative:
		return Negative
	}
	panic(fmt.Sprintf("sgraph: Sign of non-active state %v", s))
}

// StateOf converts a link sign to the state it induces: activation over a
// link with sign sig from a node in state src yields src.Sign * sig
// (s(v) = s(u) * s(u,v) in the paper).
func StateOf(src State, sig Sign) State {
	if !src.Active() {
		panic(fmt.Sprintf("sgraph: StateOf with non-active source state %v", src))
	}
	if int8(src)*int8(sig) > 0 {
		return StatePositive
	}
	return StateNegative
}

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePositive:
		return "+1"
	case StateNegative:
		return "-1"
	case StateInactive:
		return "0"
	case StateUnknown:
		return "?"
	default:
		return fmt.Sprintf("State(%d)", int8(s))
	}
}
