package sgraph

import "sort"

// Subgraph is a node-induced subgraph of a parent Graph with its own dense
// node IDs. Local maps back to parent IDs via Orig, and forward via Local.
type Subgraph struct {
	// G is the induced graph with local node IDs 0..len(Orig)-1.
	G *Graph
	// Orig[i] is the parent-graph ID of local node i.
	Orig []int
	// local maps parent IDs to local IDs (absent keys are not in the
	// subgraph).
	local map[int]int
}

// NewSubgraph wraps an already-built graph whose local node IDs correspond
// to the parent IDs listed in orig (local i <-> orig[i]). Used by callers
// that post-process an induced subgraph (e.g. dropping edges) and need to
// retain the ID mapping.
func NewSubgraph(g *Graph, orig []int) *Subgraph {
	local := make(map[int]int, len(orig))
	for i, u := range orig {
		local[u] = i
	}
	return &Subgraph{G: g, Orig: orig, local: local}
}

// Local returns the local ID of parent node u, if present.
func (s *Subgraph) Local(u int) (int, bool) {
	v, ok := s.local[u]
	return v, ok
}

// Induce builds the subgraph of g induced by the given parent node set.
// Every edge of g with both endpoints in nodes is kept, with sign and
// weight preserved. The order of nodes determines local IDs. Duplicate
// entries in nodes are rejected by the builder via duplicate edges only;
// callers must pass distinct IDs.
func Induce(g *Graph, nodes []int) *Subgraph {
	local := make(map[int]int, len(nodes))
	for i, u := range nodes {
		local[u] = i
	}
	b := NewBuilder(len(nodes))
	for i, u := range nodes {
		g.Out(u, func(e Edge) {
			if j, ok := local[e.To]; ok {
				b.AddEdge(i, j, e.Sign, e.Weight)
			}
		})
	}
	orig := make([]int, len(nodes))
	copy(orig, nodes)
	return &Subgraph{G: b.MustBuild(), Orig: orig, local: local}
}

// ConnectedComponents partitions the nodes of g into weakly connected
// components (Definition 6: direction-blind connectivity), returned as
// slices of node IDs in ascending order. The whole pass is O(n + m) via BFS.
func ConnectedComponents(g *Graph) [][]int {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int, 0, 64)
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := int32(len(comps))
		comp[start] = id
		// Head-index pop: reslicing the queue head would strand capacity
		// behind it and force reallocation on every component.
		queue = append(queue[:0], start)
		members := []int{start}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			visit := func(e Edge) {
				w := e.To
				if w == u {
					w = e.From
				}
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
					members = append(members, w)
				}
			}
			g.Out(u, visit)
			g.In(u, visit)
		}
		comps = append(comps, members)
	}
	for _, c := range comps {
		sort.Ints(c)
	}
	return comps
}
