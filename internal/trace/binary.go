package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary trace format ("RIDT" v1)
//
// A compact little-endian encoding of the same instance the JSON schema
// carries, negotiated on the HTTP wire via Content-Type
// application/x-rid-trace. Scaled-Epinions traces are ~6× smaller and
// decode ~10× faster than their JSON form — the decoder is a single
// sequential pass with no field-name scanning or float parsing.
//
//	offset  size      field
//	0       4         magic "RIDT"
//	4       2         version (LE u16, currently 1)
//	6       2         flags: bit0 rounds, bit1 seeds, bit2 name, bit3 seed states
//	8       4         node count (LE u32)
//	12      4         edge count (LE u32)
//	[name]  2 + len   name length (LE u16) + UTF-8 bytes, if flag bit2
//	edges   17 × m    from u32, to u32, sign i8, weight f64 per edge
//	observed 1 × n    state codes (+1, -1, 0, 9)
//	[rounds] 4 × n    first-infection rounds (i32, -1 unknown), if bit0
//	[seeds]  4 + 4×k  seed count (u32) + seed IDs, if bit1
//	[states] 1 × k    seed state codes, if bit3 (requires bit1)
//	trailer  4        CRC-32 (IEEE) of every preceding byte
//
// Unmarshal performs the same structural reading as the JSON decoder —
// semantic checks (ranges, duplicates, alignment) remain Validate's job,
// so both codecs feed the one validator at the same parse point.

// BinaryContentType is the HTTP media type that negotiates this codec on
// the serving API: a request body with this Content-Type is one binary
// trace rather than a JSON envelope.
const BinaryContentType = "application/x-rid-trace"

const (
	binMagic   = "RIDT"
	binVersion = 1

	binFlagRounds     = 1 << 0
	binFlagSeeds      = 1 << 1
	binFlagName       = 1 << 2
	binFlagSeedStates = 1 << 3

	binHeaderSize = 16
	binEdgeSize   = 17
)

// ErrBadBinary is wrapped by every binary-trace decode failure.
var ErrBadBinary = errors.New("trace: bad binary trace")

// AppendBinary encodes t in binary trace format, appending to dst.
//
// Byte-exact round-tripping assumes a Validate-clean trace. Inconsistent
// optional fields degrade gracefully rather than producing undecodable
// output: SeedStates without Seeds is omitted entirely (the format stores
// one state per seed, so there is nothing to attach them to), matching
// what Validate rejects on the decode side anyway.
func AppendBinary(dst []byte, t *Trace) []byte {
	flags := uint16(0)
	if t.Rounds != nil {
		flags |= binFlagRounds
	}
	if len(t.Seeds) > 0 {
		flags |= binFlagSeeds
	}
	if t.Name != "" {
		flags |= binFlagName
	}
	if len(t.SeedStates) > 0 && len(t.Seeds) > 0 {
		flags |= binFlagSeedStates
	}
	start := len(dst)
	dst = append(dst, binMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, binVersion)
	dst = binary.LittleEndian.AppendUint16(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t.Nodes))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Edges)))
	if flags&binFlagName != 0 {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(t.Name)))
		dst = append(dst, t.Name...)
	}
	for _, e := range t.Edges {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.From))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.To))
		dst = append(dst, byte(e.Sign))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Weight))
	}
	for _, c := range t.Observed {
		dst = append(dst, byte(c))
	}
	if flags&binFlagRounds != 0 {
		for _, r := range t.Rounds {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(r))
		}
	}
	if flags&binFlagSeeds != 0 {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Seeds)))
		for _, s := range t.Seeds {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(s))
		}
	}
	if flags&binFlagSeedStates != 0 {
		for _, c := range t.SeedStates {
			dst = append(dst, byte(c))
		}
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// MarshalBinary encodes t in binary trace format.
func MarshalBinary(t *Trace) []byte { return AppendBinary(nil, t) }

// binReader is a bounds-checked sequential cursor over an encoded trace.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBadBinary, fmt.Sprintf(format, args...))
	}
}

func (r *binReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.data) || r.off+n < r.off {
		r.fail("truncated reading %s (%d bytes at offset %d of %d)", what, n, r.off, len(r.data))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u16(what string) uint16 {
	if b := r.take(2, what); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *binReader) u32(what string) uint32 {
	if b := r.take(4, what); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// UnmarshalBinary decodes a binary trace. It verifies the checksum and
// performs structural (length/offset) checks only; semantic validation is
// Validate, exactly as for JSON-decoded traces.
func UnmarshalBinary(data []byte) (*Trace, error) {
	if len(data) < binHeaderSize+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any trace", ErrBadBinary, len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrBadBinary, got, want)
	}
	r := &binReader{data: body}
	if string(r.take(4, "magic")) != binMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadBinary)
	}
	if v := r.u16("version"); v != binVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadBinary, v, binVersion)
	}
	flags := r.u16("flags")
	nodes := int(r.u32("node count"))
	edges := int(r.u32("edge count"))
	t := &Trace{Version: Version, Nodes: nodes}
	if flags&binFlagName != 0 {
		n := int(r.u16("name length"))
		t.Name = string(r.take(n, "name"))
	}
	if r.err == nil {
		// Bound the claimed count by the bytes actually present before
		// allocating: a forged header can claim up to 2^32-1 edges (~70 GB
		// of EdgeRecord) in a tiny body, and MaxBodyBytes only limits what
		// was read, not what the header claims.
		if rem := len(body) - r.off; edges > rem/binEdgeSize {
			r.fail("edge count %d exceeds the %d remaining bytes", edges, rem)
		}
	}
	if r.err == nil {
		t.Edges = make([]EdgeRecord, edges)
		for i := range t.Edges {
			b := r.take(binEdgeSize, "edge")
			if b == nil {
				break
			}
			t.Edges[i] = EdgeRecord{
				From:   int(int32(binary.LittleEndian.Uint32(b[0:4]))),
				To:     int(int32(binary.LittleEndian.Uint32(b[4:8]))),
				Sign:   int8(b[8]),
				Weight: math.Float64frombits(binary.LittleEndian.Uint64(b[9:17])),
			}
		}
	}
	if b := r.take(nodes, "observed states"); b != nil {
		t.Observed = make([]int8, nodes)
		for i, c := range b {
			t.Observed[i] = int8(c)
		}
	}
	if flags&binFlagRounds != 0 {
		if b := r.take(4*nodes, "rounds"); b != nil {
			t.Rounds = make([]int32, nodes)
			for i := range t.Rounds {
				t.Rounds[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
			}
		}
	}
	seedCount := 0
	if flags&binFlagSeeds != 0 {
		seedCount = int(r.u32("seed count"))
		if b := r.take(4*seedCount, "seeds"); b != nil {
			t.Seeds = make([]int, seedCount)
			for i := range t.Seeds {
				t.Seeds[i] = int(int32(binary.LittleEndian.Uint32(b[4*i:])))
			}
		}
	}
	if flags&binFlagSeedStates != 0 {
		if flags&binFlagSeeds == 0 {
			r.fail("seed states without seeds")
		}
		if b := r.take(seedCount, "seed states"); b != nil {
			t.SeedStates = make([]int8, seedCount)
			for i, c := range b {
				t.SeedStates[i] = int8(c)
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBinary, len(body)-r.off)
	}
	return t, nil
}

// WriteBinary encodes the trace in binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	_, err := w.Write(MarshalBinary(t))
	return err
}

// ReadBinary decodes one binary trace from r.
func ReadBinary(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return UnmarshalBinary(data)
}

// Decode parses data as either wire format, dispatching on the 4-byte
// "RIDT" magic: binary if present, JSON otherwise. For callers reading
// trace files of unknown provenance (the HTTP API negotiates the format
// explicitly via Content-Type instead).
func Decode(data []byte) (*Trace, error) {
	if len(data) >= len(binMagic) && string(data[:len(binMagic)]) == binMagic {
		return UnmarshalBinary(data)
	}
	return Read(bytes.NewReader(data))
}
