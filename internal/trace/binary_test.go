package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the binary trace golden fixture")

// sampleTrace builds a small instance exercising every optional section.
func sampleTrace(withName, withRounds, withSeeds, withSeedStates bool) *Trace {
	t := &Trace{
		Version: Version,
		Nodes:   5,
		Edges: []EdgeRecord{
			{From: 0, To: 1, Sign: 1, Weight: 0.5},
			{From: 1, To: 2, Sign: -1, Weight: 0.25},
			{From: 2, To: 3, Sign: 1, Weight: 1},
			{From: 3, To: 4, Sign: 1, Weight: 0.0625},
		},
		Observed: []int8{1, -1, 9, 0, 1},
	}
	if withName {
		t.Name = "golden-instance"
	}
	if withRounds {
		t.Rounds = []int32{0, 1, -1, -1, 2}
	}
	if withSeeds {
		t.Seeds = []int{0, 4}
	}
	if withSeedStates {
		t.SeedStates = []int8{1, -1}
	}
	return t
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name                                            string
		withName, withRounds, withSeeds, withSeedStates bool
	}{
		{"bare", false, false, false, false},
		{"name", true, false, false, false},
		{"rounds", false, true, false, false},
		{"seeds-no-states", false, false, true, false},
		{"full", true, true, true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := sampleTrace(tc.withName, tc.withRounds, tc.withSeeds, tc.withSeedStates)
			if err := want.Validate(); err != nil {
				t.Fatalf("sample must be valid: %v", err)
			}
			raw := MarshalBinary(want)
			got, err := UnmarshalBinary(raw)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round trip drifted\nwant %+v\ngot  %+v", want, got)
			}
			// The decoded trace must re-encode to identical bytes, and agree
			// with the JSON path on the network hash.
			if !bytes.Equal(raw, MarshalBinary(got)) {
				t.Fatal("binary encoding is not a fixed point of decode")
			}
			if want.NetworkHash() != got.NetworkHash() {
				t.Fatal("network hash changed across the binary round trip")
			}
		})
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	want := &Trace{Version: Version, Nodes: 0}
	got, err := UnmarshalBinary(MarshalBinary(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != 0 || len(got.Edges) != 0 || len(got.Observed) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func wantBadBinary(t *testing.T, raw []byte) {
	t.Helper()
	if _, err := UnmarshalBinary(raw); !errors.Is(err, ErrBadBinary) {
		t.Fatalf("got %v, want ErrBadBinary", err)
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	raw := MarshalBinary(sampleTrace(true, true, true, true))
	for _, cut := range []int{0, 4, binHeaderSize, len(raw) / 2, len(raw) - 1} {
		wantBadBinary(t, raw[:cut])
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	raw := MarshalBinary(sampleTrace(true, true, true, true))
	for _, at := range []int{0, 5, binHeaderSize + 3, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[at] ^= 0xFF
		wantBadBinary(t, bad)
	}
}

func TestBinaryRejectsWrongVersion(t *testing.T) {
	raw := MarshalBinary(sampleTrace(false, false, false, false))
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint16(bad[4:6], binVersion+1)
	// Re-stamp the checksum so the version check itself is exercised.
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], checksumOf(bad[:len(bad)-4]))
	wantBadBinary(t, bad)
}

func TestBinaryRejectsTrailingBytes(t *testing.T) {
	raw := MarshalBinary(sampleTrace(false, false, false, false))
	bad := append(append([]byte(nil), raw[:len(raw)-4]...), 0, 0, 0)
	bad = binary.LittleEndian.AppendUint32(bad, checksumOf(bad))
	wantBadBinary(t, bad)
}

// TestBinaryRejectsForgedEdgeCount guards against allocation-from-header
// DoS: a tiny body whose header claims 2^32-1 edges (with a re-stamped,
// valid CRC) must be rejected by the pre-allocation bounds check — a
// make([]EdgeRecord, 0xFFFFFFFF) would be a ~100 GB allocation.
func TestBinaryRejectsForgedEdgeCount(t *testing.T) {
	raw := MarshalBinary(sampleTrace(false, false, false, false))
	for _, claim := range []uint32{0xFFFFFFFF, uint32(len(raw))} {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(bad[12:16], claim)
		binary.LittleEndian.PutUint32(bad[len(bad)-4:], checksumOf(bad[:len(bad)-4]))
		wantBadBinary(t, bad)
	}
}

// TestBinarySeedStatesWithoutSeeds pins the encoder's handling of an
// inconsistent trace (SeedStates set, Seeds empty — Validate rejects it):
// the orphan states are omitted so the output stays decodable, rather
// than emitting a seed-states section no decoder can attribute.
func TestBinarySeedStatesWithoutSeeds(t *testing.T) {
	in := sampleTrace(false, false, false, false)
	in.SeedStates = []int8{1}
	got, err := UnmarshalBinary(MarshalBinary(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Seeds) != 0 || len(got.SeedStates) != 0 {
		t.Fatalf("got seeds %v states %v, want both empty", got.Seeds, got.SeedStates)
	}
}

// TestBinaryGolden pins the wire format byte for byte. Regenerate
// deliberately with: go test ./internal/trace -run BinaryGolden -update
func TestBinaryGolden(t *testing.T) {
	got := MarshalBinary(sampleTrace(true, true, true, true))
	path := filepath.Join("testdata", "trace_golden.bin")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("binary trace bytes drifted from golden fixture (%d vs %d bytes)", len(got), len(want))
	}
	back, err := UnmarshalBinary(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sampleTrace(true, true, true, true), back) {
		t.Fatal("golden fixture decodes to a different trace")
	}
}

func TestObservationValidateAndSnapshot(t *testing.T) {
	full := sampleTrace(true, true, true, true)
	obs := full.Observation()
	if err := obs.Validate(full.Nodes); err != nil {
		t.Fatal(err)
	}
	g, err := full.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	fromTrace, err := full.SnapshotOn(g)
	if err != nil {
		t.Fatal(err)
	}
	fromObs, err := obs.SnapshotOn(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromTrace.States, fromObs.States) || !reflect.DeepEqual(fromTrace.Rounds, fromObs.Rounds) {
		t.Fatal("observation snapshot differs from trace snapshot")
	}
	seeds, states, err := obs.GroundTruth()
	if err != nil {
		t.Fatal(err)
	}
	wantSeeds, wantStates, _ := full.GroundTruth()
	if !reflect.DeepEqual(seeds, wantSeeds) || !reflect.DeepEqual(states, wantStates) {
		t.Fatal("observation ground truth differs from trace ground truth")
	}

	for name, bad := range map[string]*Observation{
		"short observed":   {Observed: []int8{1}},
		"bad state code":   {Observed: []int8{1, -1, 3, 0, 1}},
		"short rounds":     {Observed: full.Observed, Rounds: []int32{0}},
		"negative round":   {Observed: full.Observed, Rounds: []int32{0, -2, -1, -1, -1}},
		"seed range":       {Observed: full.Observed, Seeds: []int{99}},
		"duplicate seed":   {Observed: full.Observed, Seeds: []int{1, 1}},
		"seed state count": {Observed: full.Observed, Seeds: []int{0, 1}, SeedStates: []int8{1, -1, 1}},
		"vague seed state": {Observed: full.Observed, Seeds: []int{0}, SeedStates: []int8{9}},
	} {
		if err := bad.Validate(full.Nodes); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

// checksumOf mirrors the trailer computation for tests that forge frames.
func checksumOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
