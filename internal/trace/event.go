package trace

import (
	"encoding/json"
	"fmt"

	"repro/internal/sgraph"
)

// Event is one streamed activation-link arrival: node To is observed newly
// infected with the given state, activated (when From >= 0) over the
// diffusion link From -> To. From = -1 marks a seed event — To starts a new
// outbreak with no observed activator. Events are the wire unit of the
// ingest sessions (internal/ingest, POST /v1/sessions/{id}/events); a
// replayed sequence of events reconstructs exactly the observed snapshot a
// one-shot trace would carry.
type Event struct {
	// From is the activating node, or -1 for a seed event.
	From int `json:"from"`
	// To is the newly infected node.
	To int `json:"to"`
	// State is To's observed state as a trace code: +1, -1 or UnknownCode
	// (infected, opinion unobserved). 0 (inactive) is not an infection.
	State int8 `json:"state"`
	// Round optionally carries To's first-infection round; -1 means
	// unknown. On the wire the field is simply omitted for "unknown" —
	// the JSON codec below maps absence to -1, so round 0 stays a real
	// round (temporal pruning treats 0 and "unknown" very differently).
	Round int32 `json:"round"`
}

// eventWire is Event's JSON shape. Round is a pointer so that an omitted
// field is distinguishable from an explicit round 0: a client streaming
// untimed events must not accidentally claim every node was infected in
// round 0.
type eventWire struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	State int8   `json:"state"`
	Round *int32 `json:"round,omitempty"`
}

// MarshalJSON omits the round field when it is unknown (< 0).
func (e Event) MarshalJSON() ([]byte, error) {
	w := eventWire{From: e.From, To: e.To, State: e.State}
	if e.Round >= 0 {
		w.Round = &e.Round
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes an event, treating an absent round as unknown
// (-1) rather than round 0.
func (e *Event) UnmarshalJSON(b []byte) error {
	var w eventWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	e.From, e.To, e.State, e.Round = w.From, w.To, w.State, -1
	if w.Round != nil {
		e.Round = *w.Round
	}
	return nil
}

// Validate checks the event's structure against a node count: endpoint
// range, self-loop activation, state code and round. It is the stateless
// half of event admission; ValidateAgainst adds the checks that depend on
// the session's current observed states.
func (e Event) Validate(nodes int) error {
	if e.To < 0 || e.To >= nodes {
		return fmt.Errorf("trace: event (%d,%d): activated node %d out of range for %d nodes", e.From, e.To, e.To, nodes)
	}
	if e.From < -1 || e.From >= nodes {
		return fmt.Errorf("trace: event (%d,%d): activator %d out of range for %d nodes", e.From, e.To, e.From, nodes)
	}
	if e.From == e.To {
		return fmt.Errorf("trace: event (%d,%d): self-loop activation on node %d", e.From, e.To, e.To)
	}
	s, err := StateFromCode(e.State)
	if err != nil {
		return fmt.Errorf("trace: event (%d,%d): invalid state code %d (want +1, -1 or %d)", e.From, e.To, e.State, UnknownCode)
	}
	if s == sgraph.StateInactive {
		return fmt.Errorf("trace: event (%d,%d): state code 0 is not an infection (want +1, -1 or %d)", e.From, e.To, UnknownCode)
	}
	if e.Round < -1 {
		return fmt.Errorf("trace: event (%d,%d): invalid round %d (want -1 or >= 0)", e.From, e.To, e.Round)
	}
	return nil
}

// ValidateAgainst checks the event against the current observed states and
// the set of activation links already applied: the link must be fresh, the
// activator already infected, and the target not yet infected. applied
// reports whether an activation link (from, to) was applied before; a nil
// applied skips the duplicate check. states must be indexed by node ID
// (len(states) is trusted to cover both endpoints — call Validate first).
func (e Event) ValidateAgainst(states []sgraph.State, applied func(from, to int) bool) error {
	if applied != nil && applied(e.From, e.To) {
		return fmt.Errorf("trace: event (%d,%d): duplicate activation edge", e.From, e.To)
	}
	if e.From >= 0 {
		if s := states[e.From]; !s.Active() && s != sgraph.StateUnknown {
			return fmt.Errorf("trace: event (%d,%d): activation of uninfected endpoint %d", e.From, e.To, e.From)
		}
	}
	if s := states[e.To]; s.Active() || s == sgraph.StateUnknown {
		return fmt.Errorf("trace: event (%d,%d): node %d is already infected", e.From, e.To, e.To)
	}
	return nil
}
