package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sgraph"
)

// TestEventJSONRound pins the wire semantics of the round field: absent
// means unknown (-1), an explicit 0 is a real round, and marshaling an
// unknown round omits the field (so decode(encode(e)) is the identity).
func TestEventJSONRound(t *testing.T) {
	cases := []struct {
		name string
		body string
		want int32
	}{
		{"absent round", `{"from":-1,"to":3,"state":1}`, -1},
		{"explicit round 0", `{"from":-1,"to":3,"state":1,"round":0}`, 0},
		{"explicit round 4", `{"from":-1,"to":3,"state":1,"round":4}`, 4},
	}
	for _, tc := range cases {
		var e Event
		if err := json.Unmarshal([]byte(tc.body), &e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if e.Round != tc.want {
			t.Errorf("%s: Round = %d, want %d", tc.name, e.Round, tc.want)
		}
		if e.From != -1 || e.To != 3 || e.State != 1 {
			t.Errorf("%s: decoded %+v, want From=-1 To=3 State=1", tc.name, e)
		}
		out, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		if got := strings.Contains(string(out), `"round"`); got != (tc.want >= 0) {
			t.Errorf("%s: marshaled %s; round presence = %v, want %v", tc.name, out, got, tc.want >= 0)
		}
		var back Event
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("%s: re-decode: %v", tc.name, err)
		}
		if back != e {
			t.Errorf("%s: round trip %+v -> %s -> %+v", tc.name, e, out, back)
		}
	}
}

func TestEventValidateStructural(t *testing.T) {
	const nodes = 4
	ok := Event{From: 0, To: 1, State: 1, Round: -1}
	if err := ok.Validate(nodes); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	if err := (Event{From: -1, To: 2, State: UnknownCode}).Validate(nodes); err != nil {
		t.Fatalf("seed event rejected: %v", err)
	}
	cases := []struct {
		name string
		e    Event
		want string // pinned message fragment: the ingest API serves these verbatim
	}{
		{"target out of range", Event{From: 0, To: 4, State: 1}, "activated node 4 out of range"},
		{"negative target", Event{From: 0, To: -1, State: 1}, "activated node -1 out of range"},
		{"activator out of range", Event{From: 4, To: 1, State: 1}, "activator 4 out of range"},
		{"activator below seed marker", Event{From: -2, To: 1, State: 1}, "activator -2 out of range"},
		{"self-loop activation", Event{From: 2, To: 2, State: 1}, "self-loop activation on node 2"},
		{"invalid state code", Event{From: 0, To: 1, State: 5}, "invalid state code 5"},
		{"inactive state", Event{From: 0, To: 1, State: 0}, "state code 0 is not an infection"},
		{"bad round", Event{From: 0, To: 1, State: 1, Round: -3}, "invalid round -3"},
	}
	for _, tc := range cases {
		err := tc.e.Validate(nodes)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestEventValidateAgainst(t *testing.T) {
	states := []sgraph.State{
		sgraph.StatePositive, // 0: infected
		sgraph.StateInactive, // 1: clean
		sgraph.StateUnknown,  // 2: infected, opinion unobserved
		sgraph.StateInactive, // 3: clean
	}
	dup := func(from, to int) bool { return from == 0 && to == 3 }

	if err := (Event{From: 0, To: 1, State: 1}).ValidateAgainst(states, dup); err != nil {
		t.Fatalf("valid activation rejected: %v", err)
	}
	// Unknown-state activators count as infected (they are in the infected
	// subgraph), and nil applied skips the duplicate check.
	if err := (Event{From: 2, To: 3, State: -1}).ValidateAgainst(states, nil); err != nil {
		t.Fatalf("unknown-state activator rejected: %v", err)
	}

	cases := []struct {
		name string
		e    Event
		want string
	}{
		{"duplicate activation edge", Event{From: 0, To: 3, State: 1}, "event (0,3): duplicate activation edge"},
		{"uninfected activator", Event{From: 1, To: 3, State: 1}, "event (1,3): activation of uninfected endpoint 1"},
		{"already infected target", Event{From: 0, To: 2, State: 1}, "event (0,2): node 2 is already infected"},
		{"seed onto infected node", Event{From: -1, To: 0, State: 1}, "event (-1,0): node 0 is already infected"},
	}
	for _, tc := range cases {
		err := tc.e.ValidateAgainst(states, dup)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestStateCodeRoundTrip(t *testing.T) {
	for _, s := range []sgraph.State{sgraph.StatePositive, sgraph.StateNegative, sgraph.StateInactive, sgraph.StateUnknown} {
		back, err := StateFromCode(StateCode(s))
		if err != nil {
			t.Fatalf("state %v: %v", s, err)
		}
		if back != s {
			t.Fatalf("state %v round-tripped to %v", s, back)
		}
	}
	if _, err := StateFromCode(5); err == nil {
		t.Fatal("StateFromCode accepted code 5")
	}
}
