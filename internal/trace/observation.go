package trace

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/sgraph"
)

// Observation is the per-item payload of a batch detection: one observed
// snapshot (plus optional timing and ground truth) without the network,
// which the batch supplies once — by graph hash or one inline trace — for
// all items. Field encodings match Trace exactly.
type Observation struct {
	Name     string `json:"name,omitempty"`
	Observed []int8 `json:"observed"`
	// Rounds optionally carries partial first-infection timestamps
	// (-1 = unknown), aligned with Observed.
	Rounds []int32 `json:"rounds,omitempty"`
	// Seeds and SeedStates are the ground truth (optional).
	Seeds      []int  `json:"seeds,omitempty"`
	SeedStates []int8 `json:"seed_states,omitempty"`
}

// FromTrace extracts the observation carried by a full trace.
func (t *Trace) Observation() *Observation {
	return &Observation{
		Name:       t.Name,
		Observed:   t.Observed,
		Rounds:     t.Rounds,
		Seeds:      t.Seeds,
		SeedStates: t.SeedStates,
	}
}

// Trace assembles a full trace from this observation over an existing
// network description (nodes + edges are taken from network; everything
// observational from o).
func (o *Observation) Trace(network *Trace) *Trace {
	return &Trace{
		Version:    Version,
		Name:       o.Name,
		Nodes:      network.Nodes,
		Edges:      network.Edges,
		Observed:   o.Observed,
		Rounds:     o.Rounds,
		Seeds:      o.Seeds,
		SeedStates: o.SeedStates,
	}
}

// Validate checks the observation against a graph of the given node count,
// with the same checks and error wording Trace.Validate applies to the
// observational fields.
func (o *Observation) Validate(nodes int) error {
	if len(o.Observed) != nodes {
		return fmt.Errorf("trace: %d observed states for %d nodes", len(o.Observed), nodes)
	}
	for i, c := range o.Observed {
		if _, err := codeToState(c); err != nil {
			return fmt.Errorf("trace: observed[%d]: invalid state code %d (want +1, -1, 0 or %d)", i, c, unknownCode)
		}
	}
	if o.Rounds != nil && len(o.Rounds) != nodes {
		return fmt.Errorf("trace: %d rounds for %d nodes", len(o.Rounds), nodes)
	}
	for i, r := range o.Rounds {
		if r < -1 {
			return fmt.Errorf("trace: rounds[%d]: invalid round %d (want -1 or >= 0)", i, r)
		}
	}
	if len(o.Seeds) > 0 && len(o.SeedStates) != 0 && len(o.SeedStates) != len(o.Seeds) {
		return fmt.Errorf("trace: %d seed states for %d seeds", len(o.SeedStates), len(o.Seeds))
	}
	seenSeed := make(map[int]bool, len(o.Seeds))
	for i, s := range o.Seeds {
		if s < 0 || s >= nodes {
			return fmt.Errorf("trace: seeds[%d]: node %d out of range for %d nodes", i, s, nodes)
		}
		if seenSeed[s] {
			return fmt.Errorf("trace: seeds[%d]: duplicate seed %d", i, s)
		}
		seenSeed[s] = true
	}
	for i, c := range o.SeedStates {
		if c != 1 && c != -1 {
			return fmt.Errorf("trace: seed_states[%d]: state code %d not concrete (want +1 or -1)", i, c)
		}
	}
	return nil
}

// SnapshotOn assembles a snapshot from this observation over an
// already-built graph. The observation must have passed Validate for the
// graph's node count.
func (o *Observation) SnapshotOn(g *sgraph.Graph) (*cascade.Snapshot, error) {
	if g.NumNodes() != len(o.Observed) {
		return nil, fmt.Errorf("trace: graph has %d nodes, observation %d", g.NumNodes(), len(o.Observed))
	}
	states := make([]sgraph.State, len(o.Observed))
	for i, c := range o.Observed {
		s, err := codeToState(c)
		if err != nil {
			return nil, err
		}
		states[i] = s
	}
	if o.Rounds != nil {
		return cascade.NewSnapshotWithRounds(g, states, o.Rounds)
	}
	return cascade.NewSnapshot(g, states)
}

// GroundTruth decodes the seed set and states, or nil if absent, with
// Trace.GroundTruth semantics.
func (o *Observation) GroundTruth() ([]int, []sgraph.State, error) {
	if len(o.Seeds) == 0 {
		return nil, nil, nil
	}
	if len(o.SeedStates) != len(o.Seeds) {
		return nil, nil, fmt.Errorf("trace: %d seed states for %d seeds", len(o.SeedStates), len(o.Seeds))
	}
	states := make([]sgraph.State, len(o.SeedStates))
	for i, c := range o.SeedStates {
		s, err := codeToState(c)
		if err != nil {
			return nil, nil, err
		}
		if !s.Active() {
			return nil, nil, fmt.Errorf("trace: seed state %v not concrete", s)
		}
		states[i] = s
	}
	return append([]int(nil), o.Seeds...), states, nil
}
