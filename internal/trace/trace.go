// Package trace serializes complete ISOMIT problem instances — the
// diffusion network, the observed snapshot and the ground-truth initiators
// — as JSON, so workloads can be archived, diffed and replayed across
// tools and languages.
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/cascade"
	"repro/internal/sgraph"
)

// Version identifies the trace schema.
const Version = 1

// Trace is a self-contained ISOMIT instance.
type Trace struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	Nodes   int    `json:"nodes"`
	// Edges are diffusion-network links (information-flow orientation).
	Edges []EdgeRecord `json:"edges"`
	// Observed is the snapshot handed to detectors: one state per node,
	// encoded as +1, -1, 0 or "?" via StateCode.
	Observed []int8 `json:"observed"`
	// Rounds optionally carries partial first-infection timestamps
	// (-1 = unknown), aligned with Observed.
	Rounds []int32 `json:"rounds,omitempty"`
	// Seeds and SeedStates are the ground truth (optional).
	Seeds      []int  `json:"seeds,omitempty"`
	SeedStates []int8 `json:"seed_states,omitempty"`
}

// EdgeRecord is one diffusion link.
type EdgeRecord struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Sign   int8    `json:"sign"`
	Weight float64 `json:"weight"`
}

// UnknownCode encodes sgraph.StateUnknown in traces (the in-memory value 2
// is an implementation detail kept out of the format; 9 is visually
// distinct in raw JSON).
const UnknownCode int8 = 9

// unknownCode is kept as the historical internal name.
const unknownCode = UnknownCode

// StateCode encodes an in-memory node state as its wire code: +1, -1, 0 or
// UnknownCode.
func StateCode(s sgraph.State) int8 {
	if s == sgraph.StateUnknown {
		return unknownCode
	}
	return int8(s)
}

// StateFromCode decodes a wire state code (+1, -1, 0 or UnknownCode).
func StateFromCode(c int8) (sgraph.State, error) {
	switch c {
	case 1, -1, 0:
		return sgraph.State(c), nil
	case unknownCode:
		return sgraph.StateUnknown, nil
	default:
		return 0, fmt.Errorf("trace: invalid state code %d", c)
	}
}

func stateToCode(s sgraph.State) int8 { return StateCode(s) }

func codeToState(c int8) (sgraph.State, error) { return StateFromCode(c) }

// FromSnapshot captures a snapshot plus optional ground truth.
func FromSnapshot(name string, snap *cascade.Snapshot, seeds []int, seedStates []sgraph.State) *Trace {
	t := &Trace{
		Version:  Version,
		Name:     name,
		Nodes:    snap.G.NumNodes(),
		Observed: make([]int8, len(snap.States)),
		Seeds:    append([]int(nil), seeds...),
	}
	snap.G.Edges(func(e sgraph.Edge) {
		t.Edges = append(t.Edges, EdgeRecord{From: e.From, To: e.To, Sign: int8(e.Sign), Weight: e.Weight})
	})
	for i, s := range snap.States {
		t.Observed[i] = stateToCode(s)
	}
	if snap.Rounds != nil {
		t.Rounds = append([]int32(nil), snap.Rounds...)
	}
	for _, s := range seedStates {
		t.SeedStates = append(t.SeedStates, stateToCode(s))
	}
	return t
}

// Validate checks the instance for structural defects a decoder can detect
// without building anything: wrong version, misaligned slices, out-of-range
// state codes, out-of-range / self-loop / duplicate edges, bad signs or
// weights, and malformed ground truth. It returns a descriptive error for
// the first defect found, so transport layers (the HTTP server's 400
// responses, CLI replay) can reject bad payloads instead of panicking
// downstream.
func (t *Trace) Validate() error {
	if t.Version != Version {
		return fmt.Errorf("trace: unsupported version %d (want %d)", t.Version, Version)
	}
	if t.Nodes < 0 {
		return fmt.Errorf("trace: negative node count %d", t.Nodes)
	}
	if len(t.Observed) != t.Nodes {
		return fmt.Errorf("trace: %d observed states for %d nodes", len(t.Observed), t.Nodes)
	}
	for i, c := range t.Observed {
		if _, err := codeToState(c); err != nil {
			return fmt.Errorf("trace: observed[%d]: invalid state code %d (want +1, -1, 0 or %d)", i, c, unknownCode)
		}
	}
	if t.Rounds != nil && len(t.Rounds) != t.Nodes {
		return fmt.Errorf("trace: %d rounds for %d nodes", len(t.Rounds), t.Nodes)
	}
	for i, r := range t.Rounds {
		if r < -1 {
			return fmt.Errorf("trace: rounds[%d]: invalid round %d (want -1 or >= 0)", i, r)
		}
	}
	seen := make(map[[2]int]bool, len(t.Edges))
	for i, e := range t.Edges {
		switch {
		case e.From < 0 || e.From >= t.Nodes || e.To < 0 || e.To >= t.Nodes:
			return fmt.Errorf("trace: edges[%d]: endpoint (%d,%d) out of range for %d nodes", i, e.From, e.To, t.Nodes)
		case e.From == e.To:
			return fmt.Errorf("trace: edges[%d]: self-loop on node %d", i, e.From)
		case e.Sign != 1 && e.Sign != -1:
			return fmt.Errorf("trace: edges[%d]: invalid sign %d (want +1 or -1)", i, e.Sign)
		case e.Weight < 0 || e.Weight > 1 || math.IsNaN(e.Weight):
			return fmt.Errorf("trace: edges[%d]: weight %g outside [0, 1]", i, e.Weight)
		}
		key := [2]int{e.From, e.To}
		if seen[key] {
			return fmt.Errorf("trace: edges[%d]: duplicate edge (%d,%d)", i, e.From, e.To)
		}
		seen[key] = true
	}
	if len(t.Seeds) > 0 && len(t.SeedStates) != 0 && len(t.SeedStates) != len(t.Seeds) {
		return fmt.Errorf("trace: %d seed states for %d seeds", len(t.SeedStates), len(t.Seeds))
	}
	seenSeed := make(map[int]bool, len(t.Seeds))
	for i, s := range t.Seeds {
		if s < 0 || s >= t.Nodes {
			return fmt.Errorf("trace: seeds[%d]: node %d out of range for %d nodes", i, s, t.Nodes)
		}
		if seenSeed[s] {
			return fmt.Errorf("trace: seeds[%d]: duplicate seed %d", i, s)
		}
		seenSeed[s] = true
	}
	for i, c := range t.SeedStates {
		if c != 1 && c != -1 {
			return fmt.Errorf("trace: seed_states[%d]: state code %d not concrete (want +1 or -1)", i, c)
		}
	}
	return nil
}

// BuildGraph constructs the diffusion network alone. Callers holding a
// graph cache use this together with States to rebuild snapshots without
// re-validating edges (see NetworkHash).
func (t *Trace) BuildGraph() (*sgraph.Graph, error) {
	b := sgraph.NewBuilder(t.Nodes)
	for _, e := range t.Edges {
		b.AddEdge(e.From, e.To, sgraph.Sign(e.Sign), e.Weight)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return g, nil
}

// States decodes the observed snapshot states.
func (t *Trace) States() ([]sgraph.State, error) {
	states := make([]sgraph.State, len(t.Observed))
	for i, c := range t.Observed {
		s, err := codeToState(c)
		if err != nil {
			return nil, err
		}
		states[i] = s
	}
	return states, nil
}

// SnapshotOn assembles a snapshot from this trace's observed states over an
// already-built graph — the cache-hit path: g must be BuildGraph's result
// for a trace with identical NetworkHash.
func (t *Trace) SnapshotOn(g *sgraph.Graph) (*cascade.Snapshot, error) {
	if g.NumNodes() != t.Nodes {
		return nil, fmt.Errorf("trace: graph has %d nodes, trace %d", g.NumNodes(), t.Nodes)
	}
	states, err := t.States()
	if err != nil {
		return nil, err
	}
	if t.Rounds != nil {
		return cascade.NewSnapshotWithRounds(g, states, t.Rounds)
	}
	return cascade.NewSnapshot(g, states)
}

// Snapshot validates the trace and reconstructs the diffusion network and
// observed states.
func (t *Trace) Snapshot() (*cascade.Snapshot, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	g, err := t.BuildGraph()
	if err != nil {
		return nil, err
	}
	return t.SnapshotOn(g)
}

// NetworkHash returns a hex content hash of the diffusion network alone —
// node count plus every edge in insertion order — ignoring the snapshot and
// ground truth. Two traces over the same network (repeat queries, fresh
// cascades on a shared graph) hash equal, which is what graph caches key
// on.
func (t *Trace) NetworkHash() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(t.Nodes)
	writeInt(len(t.Edges))
	for _, e := range t.Edges {
		writeInt(e.From)
		writeInt(e.To)
		writeInt(int(e.Sign))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.Weight))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// GroundTruth decodes the seed set and states, or nil if absent.
func (t *Trace) GroundTruth() ([]int, []sgraph.State, error) {
	if len(t.Seeds) == 0 {
		return nil, nil, nil
	}
	if len(t.SeedStates) != len(t.Seeds) {
		return nil, nil, fmt.Errorf("trace: %d seed states for %d seeds", len(t.SeedStates), len(t.Seeds))
	}
	states := make([]sgraph.State, len(t.SeedStates))
	for i, c := range t.SeedStates {
		s, err := codeToState(c)
		if err != nil {
			return nil, nil, err
		}
		if !s.Active() {
			return nil, nil, fmt.Errorf("trace: seed state %v not concrete", s)
		}
		states[i] = s
	}
	return append([]int(nil), t.Seeds...), states, nil
}

// Write encodes the trace as JSON.
func Write(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Read decodes one trace from JSON.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &t, nil
}
