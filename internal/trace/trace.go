// Package trace serializes complete ISOMIT problem instances — the
// diffusion network, the observed snapshot and the ground-truth initiators
// — as JSON, so workloads can be archived, diffed and replayed across
// tools and languages.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cascade"
	"repro/internal/sgraph"
)

// Version identifies the trace schema.
const Version = 1

// Trace is a self-contained ISOMIT instance.
type Trace struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	Nodes   int    `json:"nodes"`
	// Edges are diffusion-network links (information-flow orientation).
	Edges []EdgeRecord `json:"edges"`
	// Observed is the snapshot handed to detectors: one state per node,
	// encoded as +1, -1, 0 or "?" via StateCode.
	Observed []int8 `json:"observed"`
	// Rounds optionally carries partial first-infection timestamps
	// (-1 = unknown), aligned with Observed.
	Rounds []int32 `json:"rounds,omitempty"`
	// Seeds and SeedStates are the ground truth (optional).
	Seeds      []int  `json:"seeds,omitempty"`
	SeedStates []int8 `json:"seed_states,omitempty"`
}

// EdgeRecord is one diffusion link.
type EdgeRecord struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Sign   int8    `json:"sign"`
	Weight float64 `json:"weight"`
}

// unknownCode encodes sgraph.StateUnknown in traces (the in-memory value 2
// is an implementation detail kept out of the format; 9 is visually
// distinct in raw JSON).
const unknownCode int8 = 9

func stateToCode(s sgraph.State) int8 {
	if s == sgraph.StateUnknown {
		return unknownCode
	}
	return int8(s)
}

func codeToState(c int8) (sgraph.State, error) {
	switch c {
	case 1, -1, 0:
		return sgraph.State(c), nil
	case unknownCode:
		return sgraph.StateUnknown, nil
	default:
		return 0, fmt.Errorf("trace: invalid state code %d", c)
	}
}

// FromSnapshot captures a snapshot plus optional ground truth.
func FromSnapshot(name string, snap *cascade.Snapshot, seeds []int, seedStates []sgraph.State) *Trace {
	t := &Trace{
		Version:  Version,
		Name:     name,
		Nodes:    snap.G.NumNodes(),
		Observed: make([]int8, len(snap.States)),
		Seeds:    append([]int(nil), seeds...),
	}
	snap.G.Edges(func(e sgraph.Edge) {
		t.Edges = append(t.Edges, EdgeRecord{From: e.From, To: e.To, Sign: int8(e.Sign), Weight: e.Weight})
	})
	for i, s := range snap.States {
		t.Observed[i] = stateToCode(s)
	}
	if snap.Rounds != nil {
		t.Rounds = append([]int32(nil), snap.Rounds...)
	}
	for _, s := range seedStates {
		t.SeedStates = append(t.SeedStates, stateToCode(s))
	}
	return t
}

// Snapshot reconstructs the diffusion network and observed states.
func (t *Trace) Snapshot() (*cascade.Snapshot, error) {
	if t.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", t.Version)
	}
	if len(t.Observed) != t.Nodes {
		return nil, fmt.Errorf("trace: %d observed states for %d nodes", len(t.Observed), t.Nodes)
	}
	b := sgraph.NewBuilder(t.Nodes)
	for _, e := range t.Edges {
		b.AddEdge(e.From, e.To, sgraph.Sign(e.Sign), e.Weight)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	states := make([]sgraph.State, t.Nodes)
	for i, c := range t.Observed {
		states[i], err = codeToState(c)
		if err != nil {
			return nil, err
		}
	}
	if t.Rounds != nil {
		return cascade.NewSnapshotWithRounds(g, states, t.Rounds)
	}
	return cascade.NewSnapshot(g, states)
}

// GroundTruth decodes the seed set and states, or nil if absent.
func (t *Trace) GroundTruth() ([]int, []sgraph.State, error) {
	if len(t.Seeds) == 0 {
		return nil, nil, nil
	}
	if len(t.SeedStates) != len(t.Seeds) {
		return nil, nil, fmt.Errorf("trace: %d seed states for %d seeds", len(t.SeedStates), len(t.Seeds))
	}
	states := make([]sgraph.State, len(t.SeedStates))
	for i, c := range t.SeedStates {
		s, err := codeToState(c)
		if err != nil {
			return nil, nil, err
		}
		if !s.Active() {
			return nil, nil, fmt.Errorf("trace: seed state %v not concrete", s)
		}
		states[i] = s
	}
	return append([]int(nil), t.Seeds...), states, nil
}

// Write encodes the trace as JSON.
func Write(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// Read decodes one trace from JSON.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &t, nil
}
