package trace

import (
	"bytes"
	"testing"

	"repro/internal/cascade"
	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/sgraph"
	"repro/internal/xrand"
)

func sampleInstance(t *testing.T) (*cascade.Snapshot, []int, []sgraph.State) {
	t.Helper()
	rng := xrand.New(3)
	g, err := gen.PreferentialAttachment(gen.Config{Nodes: 200, Edges: 1000, PositiveRatio: 0.8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dif := g.Reverse()
	seeds, states, err := diffusion.SampleInitiators(dif.NumNodes(), 5, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := diffusion.MFC(dif, seeds, states, diffusion.MFCConfig{Alpha: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	observed := diffusion.MaskStates(c.States, 0.2, rng)
	snap, err := cascade.NewSnapshot(dif, observed)
	if err != nil {
		t.Fatal(err)
	}
	return snap, seeds, states
}

func TestRoundTrip(t *testing.T) {
	snap, seeds, seedStates := sampleInstance(t)
	tr := FromSnapshot("unit", snap, seeds, seedStates)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "unit" || back.Version != Version {
		t.Errorf("meta = %q v%d", back.Name, back.Version)
	}
	snap2, err := back.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.G.NumNodes() != snap.G.NumNodes() || snap2.G.NumEdges() != snap.G.NumEdges() {
		t.Fatalf("graph size changed: %d/%d vs %d/%d",
			snap2.G.NumNodes(), snap2.G.NumEdges(), snap.G.NumNodes(), snap.G.NumEdges())
	}
	for v := range snap.States {
		if snap.States[v] != snap2.States[v] {
			t.Fatalf("state[%d] = %v vs %v", v, snap.States[v], snap2.States[v])
		}
	}
	snap.G.Edges(func(e sgraph.Edge) {
		got, ok := snap2.G.HasEdge(e.From, e.To)
		if !ok || got.Sign != e.Sign || got.Weight != e.Weight {
			t.Fatalf("edge (%d,%d) changed", e.From, e.To)
		}
	})
	gotSeeds, gotStates, err := back.GroundTruth()
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if gotSeeds[i] != seeds[i] || gotStates[i] != seedStates[i] {
			t.Fatalf("ground truth changed at %d", i)
		}
	}
}

func TestUnknownStateEncoding(t *testing.T) {
	b := sgraph.NewBuilder(2)
	b.AddEdge(0, 1, sgraph.Positive, 0.5)
	g := b.MustBuild()
	snap, err := cascade.NewSnapshot(g, []sgraph.State{sgraph.StatePositive, sgraph.StateUnknown})
	if err != nil {
		t.Fatal(err)
	}
	tr := FromSnapshot("", snap, nil, nil)
	if tr.Observed[1] != 9 {
		t.Errorf("unknown encoded as %d, want 9", tr.Observed[1])
	}
	snap2, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.States[1] != sgraph.StateUnknown {
		t.Errorf("unknown decoded as %v", snap2.States[1])
	}
}

func TestValidation(t *testing.T) {
	if _, err := (&Trace{Version: 99}).Snapshot(); err == nil {
		t.Error("bad version should error")
	}
	if _, err := (&Trace{Version: Version, Nodes: 2, Observed: []int8{1}}).Snapshot(); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := (&Trace{Version: Version, Nodes: 1, Observed: []int8{5}}).Snapshot(); err == nil {
		t.Error("bad state code should error")
	}
	bad := &Trace{Seeds: []int{1}, SeedStates: nil}
	if _, _, err := bad.GroundTruth(); err == nil {
		t.Error("seed/state mismatch should error")
	}
	none := &Trace{}
	if s, st, err := none.GroundTruth(); s != nil || st != nil || err != nil {
		t.Error("absent ground truth should return nils")
	}
	if _, err := Read(bytes.NewBufferString("{broken")); err == nil {
		t.Error("broken JSON should error")
	}
}

func TestValidateRejectsMalformedInstances(t *testing.T) {
	valid := func() *Trace {
		return &Trace{
			Version:  Version,
			Nodes:    3,
			Edges:    []EdgeRecord{{From: 0, To: 1, Sign: 1, Weight: 0.5}, {From: 1, To: 2, Sign: -1, Weight: 0.3}},
			Observed: []int8{1, -1, 0},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"bad version", func(tr *Trace) { tr.Version = 7 }},
		{"negative nodes", func(tr *Trace) { tr.Nodes = -1; tr.Observed = nil }},
		{"observed length", func(tr *Trace) { tr.Observed = tr.Observed[:2] }},
		{"bad state code", func(tr *Trace) { tr.Observed[0] = 5 }},
		{"rounds length", func(tr *Trace) { tr.Rounds = []int32{0} }},
		{"bad round", func(tr *Trace) { tr.Rounds = []int32{0, -2, 1} }},
		{"edge out of range", func(tr *Trace) { tr.Edges[0].To = 3 }},
		{"negative endpoint", func(tr *Trace) { tr.Edges[0].From = -1 }},
		{"self-loop", func(tr *Trace) { tr.Edges[1].To = 1 }},
		{"bad sign", func(tr *Trace) { tr.Edges[0].Sign = 0 }},
		{"bad weight", func(tr *Trace) { tr.Edges[0].Weight = 1.5 }},
		{"duplicate edge", func(tr *Trace) { tr.Edges[1] = tr.Edges[0] }},
		{"seed out of range", func(tr *Trace) { tr.Seeds = []int{3}; tr.SeedStates = []int8{1} }},
		{"duplicate seed", func(tr *Trace) { tr.Seeds = []int{1, 1}; tr.SeedStates = []int8{1, 1} }},
		{"seed state mismatch", func(tr *Trace) { tr.Seeds = []int{0, 1}; tr.SeedStates = []int8{1} }},
		{"seed state not concrete", func(tr *Trace) { tr.Seeds = []int{0}; tr.SeedStates = []int8{9} }},
	}
	for _, tc := range cases {
		tr := valid()
		tc.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed trace", tc.name)
		}
		if _, err := tr.Snapshot(); err == nil {
			t.Errorf("%s: Snapshot accepted malformed trace", tc.name)
		}
	}
}

func TestNetworkHash(t *testing.T) {
	snap, seeds, seedStates := sampleInstance(t)
	a := FromSnapshot("a", snap, seeds, seedStates)
	b := FromSnapshot("b", snap, nil, nil)
	if a.NetworkHash() != b.NetworkHash() {
		t.Error("same network with different metadata should hash equal")
	}
	// A different snapshot over the same graph keeps the network hash.
	c := FromSnapshot("c", snap, seeds, seedStates)
	c.Observed[0] = unknownCode
	if a.NetworkHash() != c.NetworkHash() {
		t.Error("observed states must not affect the network hash")
	}
	// Any edge perturbation changes it.
	d := FromSnapshot("d", snap, nil, nil)
	d.Edges[0].Weight += 1e-9
	if a.NetworkHash() == d.NetworkHash() {
		t.Error("edge weight change should change the network hash")
	}
	e := FromSnapshot("e", snap, nil, nil)
	e.Nodes++
	e.Observed = append(e.Observed, 0)
	if a.NetworkHash() == e.NetworkHash() {
		t.Error("node count change should change the network hash")
	}
}

func TestSnapshotOnCachedGraph(t *testing.T) {
	snap, seeds, seedStates := sampleInstance(t)
	tr := FromSnapshot("cached", snap, seeds, seedStates)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := tr.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := tr.SnapshotOn(g)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.G != g {
		t.Error("SnapshotOn should reuse the supplied graph")
	}
	for v := range snap.States {
		if snap.States[v] != snap2.States[v] {
			t.Fatalf("state[%d] changed", v)
		}
	}
	small := sgraph.NewBuilder(1).MustBuild()
	if _, err := tr.SnapshotOn(small); err == nil {
		t.Error("node-count mismatch should error")
	}
}

func TestRoundsRoundTrip(t *testing.T) {
	b := sgraph.NewBuilder(2)
	b.AddEdge(0, 1, sgraph.Positive, 0.5)
	g := b.MustBuild()
	snap, err := cascade.NewSnapshotWithRounds(g,
		[]sgraph.State{sgraph.StatePositive, sgraph.StatePositive}, []int32{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := FromSnapshot("timed", snap, nil, nil)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := back.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Rounds == nil || snap2.Rounds[1] != 3 {
		t.Errorf("rounds lost: %v", snap2.Rounds)
	}
}

func FuzzTraceRead(f *testing.F) {
	snap, seeds, states := func() (*cascade.Snapshot, []int, []sgraph.State) {
		b := sgraph.NewBuilder(2)
		b.AddEdge(0, 1, sgraph.Positive, 0.5)
		g := b.MustBuild()
		s, _ := cascade.NewSnapshot(g, []sgraph.State{sgraph.StatePositive, sgraph.StateNegative})
		return s, []int{0}, []sgraph.State{sgraph.StatePositive}
	}()
	var seed bytes.Buffer
	if err := Write(&seed, FromSnapshot("fuzz", snap, seeds, states)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("{}")
	f.Add(`{"version":1,"nodes":1,"observed":[9]}`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		// Decoded traces must never panic downstream; errors are fine.
		if _, err := tr.Snapshot(); err != nil {
			return
		}
		_, _, _ = tr.GroundTruth()
	})
}
