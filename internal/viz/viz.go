// Package viz renders tiny text visualizations — horizontal bars and
// sparklines — used by the experiment reports and examples to make sweep
// shapes legible directly in terminal output.
package viz

import (
	"math"
	"strings"
)

// Bar renders value as a bar of '#' runes scaled so that max fills width.
// Values outside [0, max] are clamped; a non-positive max yields an empty
// bar.
func Bar(value, max float64, width int) string {
	if width <= 0 || max <= 0 {
		return ""
	}
	frac := value / max
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return strings.Repeat("#", int(frac*float64(width)+0.5))
}

// sparkLevels are the classic eighth-block spark characters.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders the series as a sparkline, auto-scaled to its own min and
// max. NaN entries render as spaces; a constant series renders mid-level.
func Spark(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range series {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) { // all NaN
		return strings.Repeat(" ", len(series))
	}
	var b strings.Builder
	for _, v := range series {
		switch {
		case math.IsNaN(v):
			b.WriteRune(' ')
		case hi == lo:
			b.WriteRune(sparkLevels[len(sparkLevels)/2])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
			b.WriteRune(sparkLevels[idx])
		}
	}
	return b.String()
}

// Histogram renders labeled values as aligned bars, one per line, scaled
// to the largest value.
func Histogram(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	labelW, max := 0, 0.0
	for i, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
		if values[i] > max {
			max = values[i]
		}
	}
	var b strings.Builder
	for i, l := range labels {
		b.WriteString(l)
		b.WriteString(strings.Repeat(" ", labelW-len(l)+1))
		b.WriteString(Bar(values[i], max, width))
		b.WriteByte('\n')
	}
	return b.String()
}
