package viz

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBar(t *testing.T) {
	tests := []struct {
		name       string
		value, max float64
		width      int
		want       string
	}{
		{"full", 1, 1, 4, "####"},
		{"half", 0.5, 1, 4, "##"},
		{"zero", 0, 1, 4, ""},
		{"clamped high", 2, 1, 3, "###"},
		{"clamped low", -1, 1, 3, ""},
		{"zero max", 1, 0, 3, ""},
		{"zero width", 1, 1, 0, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Bar(tt.value, tt.max, tt.width); got != tt.want {
				t.Errorf("Bar = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestBarNeverOverflows(t *testing.T) {
	f := func(v, max float64, w int) bool {
		width := w % 50
		if width < 0 {
			width = -width
		}
		return len(Bar(v, max, width)) <= width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpark(t *testing.T) {
	if got := Spark(nil); got != "" {
		t.Errorf("empty Spark = %q", got)
	}
	s := Spark([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("Spark length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("Spark endpoints = %q", s)
	}
	// Constant series: mid-level blocks.
	c := []rune(Spark([]float64{5, 5, 5}))
	for _, r := range c {
		if r != '▅' {
			t.Errorf("constant Spark = %q", string(c))
		}
	}
	// NaNs become spaces.
	withNaN := []rune(Spark([]float64{0, math.NaN(), 1}))
	if withNaN[1] != ' ' {
		t.Errorf("NaN Spark = %q", string(withNaN))
	}
	allNaN := Spark([]float64{math.NaN(), math.NaN()})
	if allNaN != "  " {
		t.Errorf("all-NaN Spark = %q", allNaN)
	}
}

func TestSparkMonotone(t *testing.T) {
	// A rising series produces non-decreasing levels.
	s := []rune(Spark([]float64{1, 2, 3, 4, 5, 6, 7, 8}))
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("Spark not monotone: %q", string(s))
		}
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]string{"aa", "b"}, []float64{2, 1}, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "aa ####" {
		t.Errorf("line 0 = %q", lines[0])
	}
	if lines[1] != "b  ##" {
		t.Errorf("line 1 = %q", lines[1])
	}
	if Histogram([]string{"a"}, []float64{1, 2}, 3) != "" {
		t.Error("mismatched lengths should return empty")
	}
	if Histogram(nil, nil, 3) != "" {
		t.Error("empty input should return empty")
	}
}
