// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the repository. Every simulation, generator and
// experiment derives its randomness from an explicit *xrand.Rand seeded by
// the caller, so whole experiment suites are reproducible from a single
// seed. The generator is a SplitMix64 core (Steele, Lea, Flood 2014), which
// passes BigCrush for the uses here and supports cheap stream splitting.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; use Split to derive independent generators for concurrent
// workers.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// golden is the SplitMix64 increment (odd, irrational-derived).
const golden = 0x9e3779b97f4a7c15

// Uint64 returns the next value in the stream, uniform over all uint64.
func (r *Rand) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a new, statistically independent generator from r, advancing
// r by one step. Useful for giving each goroutine or trial its own stream.
func (r *Rand) Split() *Rand {
	// Mix the drawn value once more so parent and child streams do not
	// share prefixes.
	return New(r.Uint64() ^ 0x6a09e667f3bcc909)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation (rejection form).
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Bool returns true with probability p. p outside [0,1] is clamped.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *Rand) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponential variate with rate lambda. It panics if
// lambda <= 0.
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: Exp with non-positive lambda")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, exactly as
// math/rand.Shuffle does (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher–Yates over a dense index array: O(n) memory, O(n+k)
	// time; fine at the scales used here (n <= a few hundred thousand).
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	out := make([]int, k)
	copy(out, p[:k])
	return out
}
