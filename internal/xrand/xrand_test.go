package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Parent advanced by one step; child stream differs from both the
	// parent's continuation and a same-seed generator.
	cont := parent.Uint64()
	if child.Uint64() == cont {
		t.Error("child mirrors parent continuation")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d count %d, want ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBool(t *testing.T) {
	r := New(4)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %g", frac)
	}
}

func TestRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Range(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Range(2,5) = %g", v)
		}
	}
	if got := r.Range(3, 3); got != 3 {
		t.Errorf("Range(3,3) = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Range(5,2) did not panic")
		}
	}()
	r.Range(5, 2)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestExp(t *testing.T) {
	r := New(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp < 0: %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %g, want ~0.5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	r.Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSample(t *testing.T) {
	r := New(8)
	s := r.Sample(100, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("bad sample %v", s)
		}
		seen[v] = true
	}
	if got := r.Sample(5, 0); got != nil {
		t.Errorf("Sample(5,0) = %v, want nil", got)
	}
	full := r.Sample(5, 5)
	if len(full) != 5 {
		t.Errorf("Sample(5,5) len = %d", len(full))
	}
	defer func() {
		if recover() == nil {
			t.Error("Sample(3,4) did not panic")
		}
	}()
	r.Sample(3, 4)
}

func TestSampleUniform(t *testing.T) {
	// Each element of [0,10) should appear in a 3-sample with rate 0.3.
	counts := make([]int, 10)
	r := New(9)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(10, 3) {
			counts[v]++
		}
	}
	for v, c := range counts {
		rate := float64(c) / trials
		if math.Abs(rate-0.3) > 0.02 {
			t.Errorf("element %d rate = %g, want ~0.3", v, rate)
		}
	}
}

func TestShuffleSwapsOnly(t *testing.T) {
	r := New(10)
	vals := []int{1, 2, 3, 4, 5}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: %v", vals)
	}
}
