// Determinism contract of the parallel detection pipeline: Parallelism
// changes wall time, never results. The test drives the full RID pipeline
// — component extraction, forest building, per-tree DP — over a seeded
// Epinions-scale multi-outbreak snapshot at Parallelism 1 and 8 and
// requires byte-identical detections, across the objective and budget-DP
// variants. CI runs this under -race, which also certifies the fan-out is
// data-race-free.
package repro_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
)

func TestParallelDetectionDeterminism(t *testing.T) {
	// Eight disjoint outbreaks: a single cascade concentrates in one
	// component and the fan-out would have nothing to re-order.
	base := experiment.Workload{Dataset: "Epinions", Scale: 0.01, Trials: 1, BaseSeed: 99}
	in, err := base.RunSharded(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	configs := []core.RIDConfig{
		{Alpha: 3, Beta: 0.3},
		{Alpha: 3, Beta: 0.1, Objective: core.ObjectivePartition},
		{Alpha: 3, Beta: 0.3, UseBudgetDP: true, BranchStates: true},
	}
	for _, cfg := range configs {
		serialCfg, parallelCfg := cfg, cfg
		serialCfg.Parallelism = 1
		parallelCfg.Parallelism = 8

		serialRID, err := core.NewRID(serialCfg)
		if err != nil {
			t.Fatal(err)
		}
		parallelRID, err := core.NewRID(parallelCfg)
		if err != nil {
			t.Fatal(err)
		}

		serialForest, err := serialRID.Extract(in.Snap)
		if err != nil {
			t.Fatal(err)
		}
		parallelForest, err := parallelRID.Extract(in.Snap)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serialForest, parallelForest) {
			t.Errorf("config %+v: extracted forests differ between Parallelism 1 and 8", cfg)
		}

		serialDet, err := serialRID.Detect(in.Snap)
		if err != nil {
			t.Fatal(err)
		}
		parallelDet, err := parallelRID.Detect(in.Snap)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serialDet, parallelDet) {
			t.Errorf("config %+v: detections differ between Parallelism 1 and 8\nserial:   %+v\nparallel: %+v",
				cfg, serialDet, parallelDet)
		}
		if len(serialDet.Initiators) == 0 {
			t.Errorf("config %+v: empty detection — workload exercises nothing", cfg)
		}
	}
}
