package repro

import (
	"repro/internal/balance"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/influence"
	"repro/internal/sgraph"
	"repro/internal/xrand"
)

// Re-exported substrate types. Graph is an immutable weighted signed
// directed graph; build one with NewGraphBuilder, a generator, or
// LoadDataset.
type (
	Graph        = sgraph.Graph
	GraphBuilder = sgraph.Builder
	Edge         = sgraph.Edge
	Sign         = sgraph.Sign
	State        = sgraph.State
	Stats        = sgraph.Stats

	// Cascade is the full record of one diffusion run; Snapshot is the
	// observed infected network handed to the detectors.
	Cascade  = diffusion.Cascade
	Snapshot = cascade.Snapshot

	// Detector is anything that can identify rumor initiators; Detection
	// its output. RID is the paper's method.
	Detector  = core.Detector
	Detection = core.Detection
	RID       = core.RID
	RIDConfig = core.RIDConfig

	// Rand is the deterministic PRNG used throughout; derive one per
	// experiment with NewRand.
	Rand = xrand.Rand
)

// Link polarities and node states.
const (
	Positive = sgraph.Positive
	Negative = sgraph.Negative

	StatePositive = sgraph.StatePositive
	StateNegative = sgraph.StateNegative
	StateInactive = sgraph.StateInactive
	StateUnknown  = sgraph.StateUnknown
)

// RID objectives (see core.Objective).
const (
	ObjectiveLocal     = core.ObjectiveLocal
	ObjectivePartition = core.ObjectivePartition
)

// NewRand returns a deterministic generator seeded with seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// NewGraphBuilder returns a builder for a signed graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return sgraph.NewBuilder(n) }

// LoadDataset materializes a synthetic stand-in for one of the paper's
// Table II networks ("Epinions" or "Slashdot") at the given scale in
// (0, 1], Jaccard-weighted per the paper's setup. Real SNAP files can be
// parsed instead with the internal/dataset package.
func LoadDataset(name string, scale float64, rng *Rand) (*Graph, error) {
	return dataset.Load(name, scale, rng)
}

// GenerateNetwork builds a synthetic signed social network with the given
// node and edge counts and positive-link ratio (preferential attachment
// with triadic closure), then applies the paper's Jaccard weighting.
func GenerateNetwork(nodes, edges int, positiveRatio float64, rng *Rand) (*Graph, error) {
	g, err := gen.PreferentialAttachment(gen.Config{
		Nodes: nodes, Edges: edges, PositiveRatio: positiveRatio,
	}, rng)
	if err != nil {
		return nil, err
	}
	return sgraph.WeightByJaccard(g, 0.1, rng), nil
}

// SimConfig parameterizes SimulateMFC.
type SimConfig struct {
	// Initiators is the seed set; States their initial opinions (+1/-1).
	// Leave both nil to sample N random initiators with positive ratio
	// Theta, as in the paper's protocol.
	Initiators []int
	States     []State
	N          int
	Theta      float64
	// Alpha is the asymmetric boosting coefficient (default 3).
	Alpha float64
}

// SimulateMFC reverses the social network into its diffusion network
// (Definition 2) and runs the MFC model (Algorithm 1) from the configured
// initiators. It returns the cascade record, the diffusion network it ran
// on, and the seed set used.
func SimulateMFC(social *Graph, cfg SimConfig, rng *Rand) (*Cascade, *Graph, error) {
	dif := social.Reverse()
	if cfg.Alpha == 0 {
		cfg.Alpha = 3
	}
	seeds, states := cfg.Initiators, cfg.States
	if seeds == nil {
		n := cfg.N
		if n == 0 {
			n = 1
		}
		theta := cfg.Theta
		if theta == 0 {
			theta = 0.5
		}
		var err error
		seeds, states, err = diffusion.SampleInitiators(dif.NumNodes(), n, theta, rng)
		if err != nil {
			return nil, nil, err
		}
	}
	c, err := diffusion.MFC(dif, seeds, states, diffusion.MFCConfig{Alpha: cfg.Alpha}, rng)
	if err != nil {
		return nil, nil, err
	}
	return c, dif, nil
}

// NewSnapshot pairs a diffusion network with observed node states.
func NewSnapshot(diffusionNet *Graph, states []State) (*Snapshot, error) {
	return cascade.NewSnapshot(diffusionNet, states)
}

// NewSnapshotWithRounds additionally attaches partial first-infection
// timestamps (-1 = unknown); extraction prunes candidate activation links
// that would run backward in time. An extension beyond the paper's
// state-only snapshots.
func NewSnapshotWithRounds(diffusionNet *Graph, states []State, rounds []int32) (*Snapshot, error) {
	return cascade.NewSnapshotWithRounds(diffusionNet, states, rounds)
}

// SampleRounds reveals each infected node's first-infection round with the
// given probability (-1 elsewhere), for NewSnapshotWithRounds.
func SampleRounds(c *Cascade, keepFraction float64, rng *Rand) []int32 {
	return diffusion.SampleRounds(c, keepFraction, rng)
}

// MaskStates hides each active state with the given probability, modelling
// partially observed networks ("?" states).
func MaskStates(states []State, fraction float64, rng *Rand) []State {
	return diffusion.MaskStates(states, fraction, rng)
}

// HideInfected resets each active state to inactive with the given
// probability, modelling infections that go entirely unobserved.
func HideInfected(states []State, fraction float64, rng *Rand) []State {
	return diffusion.HideInfected(states, fraction, rng)
}

// NewRID returns the paper's Rumor Initiator Detector.
func NewRID(cfg RIDConfig) (*RID, error) { return core.NewRID(cfg) }

// NewRIDTree returns the RID-Tree baseline (extracted-forest roots).
func NewRIDTree(alpha float64) (Detector, error) { return core.NewRIDTree(alpha) }

// NewRIDPositive returns the RID-Positive baseline (positive links only).
func NewRIDPositive() Detector { return core.RIDPositive{} }

// NewRumorCentrality returns the Shah-Zaman rumor-centrality comparator.
func NewRumorCentrality() Detector { return core.RumorCentrality{} }

// NewJordanCenter returns the distance-center (Jordan center) comparator.
func NewJordanCenter() Detector { return core.JordanCenter{} }

// NewDegreeMax returns the highest-degree-per-component comparator.
func NewDegreeMax() Detector { return core.DegreeMax{} }

// SimulateVoter runs the signed voter model (Li et al., WSDM 2013) for the
// given number of rounds from explicit or sampled initiators, mirroring
// SimulateMFC.
func SimulateVoter(social *Graph, cfg SimConfig, rounds int, rng *Rand) (*Cascade, *Graph, error) {
	dif := social.Reverse()
	seeds, states := cfg.Initiators, cfg.States
	if seeds == nil {
		n := cfg.N
		if n == 0 {
			n = 1
		}
		theta := cfg.Theta
		if theta == 0 {
			theta = 0.5
		}
		var err error
		seeds, states, err = diffusion.SampleInitiators(dif.NumNodes(), n, theta, rng)
		if err != nil {
			return nil, nil, err
		}
	}
	c, err := diffusion.Voter(dif, seeds, states, diffusion.VoterConfig{Rounds: rounds}, rng)
	if err != nil {
		return nil, nil, err
	}
	return c, dif, nil
}

// Campaign types for influence maximization under MFC (the Table I sister
// problem); see internal/influence for details.
type (
	CampaignConfig = influence.Config
	CampaignResult = influence.Result
)

// Campaign objectives.
const (
	MaximizeSpread      = influence.MaximizeSpread
	MaximizePositive    = influence.MaximizePositive
	MaximizeNetPositive = influence.MaximizeNetPositive
)

// SelectSeeds picks cfg.K seeds on the diffusion network by CELF lazy
// greedy under MFC.
func SelectSeeds(diffusionNet *Graph, cfg CampaignConfig, rng *Rand) (*CampaignResult, error) {
	return influence.Greedy(diffusionNet, cfg, rng)
}

// EstimateSpread Monte Carlo-estimates a seed set's campaign objective.
func EstimateSpread(diffusionNet *Graph, seeds []int, cfg CampaignConfig, rng *Rand) (float64, error) {
	return influence.EstimateSpread(diffusionNet, seeds, cfg, rng)
}

// BalanceCensus is a signed-triangle census; see internal/balance.
type BalanceCensus = balance.Census

// TriangleCensus counts signed triangles and their balance.
func TriangleCensus(g *Graph) BalanceCensus { return balance.TriangleCensus(g) }
