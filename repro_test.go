package repro_test

import (
	"testing"

	"repro"
	"repro/internal/metrics"
)

func TestEndToEndPublicAPI(t *testing.T) {
	rng := repro.NewRand(2017)
	social, err := repro.GenerateNetwork(2000, 12000, 0.85, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, dif, err := repro.SimulateMFC(social, repro.SimConfig{N: 60, Theta: 0.5, Alpha: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInfected() < 60 {
		t.Fatalf("infected = %d, want >= seeds", c.NumInfected())
	}
	snap, err := repro.NewSnapshot(dif, c.States)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := repro.NewRID(repro.RIDConfig{Alpha: 3, Beta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	det, err := rid.Detect(snap)
	if err != nil {
		t.Fatal(err)
	}
	id := metrics.EvalIdentity(det.Initiators, c.Initiators)
	if id.F1 == 0 {
		t.Error("RID found nothing")
	}
	st, err := metrics.EvalStates(det.Initiators, det.States, c.Initiators, c.InitStates)
	if err != nil {
		t.Fatal(err)
	}
	if st.Compared > 0 && st.Accuracy < 0.5 {
		t.Errorf("state accuracy = %g", st.Accuracy)
	}
}

func TestLoadDatasetFacade(t *testing.T) {
	g, err := repro.LoadDataset("Epinions", 0.01, repro.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Nodes == 0 || st.Edges == 0 {
		t.Fatal("empty dataset")
	}
	if st.PositiveRatio < 0.75 || st.PositiveRatio > 0.95 {
		t.Errorf("positive ratio = %g, want near 0.85", st.PositiveRatio)
	}
}

func TestBaselineFacades(t *testing.T) {
	rng := repro.NewRand(5)
	social, err := repro.GenerateNetwork(800, 4800, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, dif, err := repro.SimulateMFC(social, repro.SimConfig{N: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	masked := repro.MaskStates(c.States, 0.2, rng)
	snap, err := repro.NewSnapshot(dif, masked)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := repro.NewRIDTree(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []repro.Detector{tree, repro.NewRIDPositive(), repro.NewRumorCentrality()} {
		det, err := d.Detect(snap)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if len(det.Initiators) == 0 {
			t.Errorf("%s detected nothing", d.Name())
		}
	}
}

func TestVoterFacade(t *testing.T) {
	rng := repro.NewRand(21)
	social, err := repro.GenerateNetwork(500, 3000, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, dif, err := repro.SimulateVoter(social, repro.SimConfig{N: 10}, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dif.NumNodes() != 500 {
		t.Fatal("diffusion net wrong size")
	}
	if c.NumInfected() < 10 {
		t.Errorf("voter infected = %d", c.NumInfected())
	}
	if c.Rounds != 15 {
		t.Errorf("rounds = %d, want 15", c.Rounds)
	}
}

func TestCampaignFacade(t *testing.T) {
	rng := repro.NewRand(31)
	social, err := repro.GenerateNetwork(400, 2400, 0.85, rng)
	if err != nil {
		t.Fatal(err)
	}
	dif := social.Reverse()
	res, err := repro.SelectSeeds(dif, repro.CampaignConfig{
		K: 3, Samples: 40, Objective: repro.MaximizePositive,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	spread, err := repro.EstimateSpread(dif, res.Seeds, repro.CampaignConfig{K: 3, Samples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if spread < 3 {
		t.Errorf("spread = %g", spread)
	}
}

func TestBalanceFacade(t *testing.T) {
	g, err := repro.LoadDataset("Epinions", 0.01, repro.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	c := repro.TriangleCensus(g)
	if c.Triangles == 0 {
		t.Fatal("no triangles in generated network")
	}
	if c.BalancedFraction < 0.6 {
		t.Errorf("balanced fraction = %g, want >= 0.6 (balance-aware closure)", c.BalancedFraction)
	}
}

func TestCenterDetectorFacades(t *testing.T) {
	rng := repro.NewRand(41)
	social, err := repro.GenerateNetwork(600, 3600, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, dif, err := repro.SimulateMFC(social, repro.SimConfig{N: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := repro.NewSnapshot(dif, c.States)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []repro.Detector{repro.NewJordanCenter(), repro.NewDegreeMax()} {
		det, err := d.Detect(snap)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if len(det.Initiators) == 0 {
			t.Errorf("%s found nothing", d.Name())
		}
	}
}

func TestExplicitSeedsFacade(t *testing.T) {
	rng := repro.NewRand(9)
	b := repro.NewGraphBuilder(3)
	b.AddEdge(1, 0, repro.Positive, 1) // social: 1 trusts 0
	b.AddEdge(2, 1, repro.Negative, 1) // social: 2 distrusts 1
	social, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := repro.SimulateMFC(social, repro.SimConfig{
		Initiators: []int{0},
		States:     []repro.State{repro.StatePositive},
		Alpha:      3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Diffusion reverses: 0 -> 1 (positive), 1 -> 2 (negative).
	if c.States[1] != repro.StatePositive || c.States[2] != repro.StateNegative {
		t.Errorf("states = %v", c.States)
	}
}
