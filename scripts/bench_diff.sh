#!/bin/sh
# bench_diff.sh — compare two BENCH_*.json files (as written by
# scripts/bench_json.sh) per benchmark and cpu width on ns/op. Prints a
# delta table and exits 1 if any benchmark slowed down by more than
# BENCH_DIFF_THRESHOLD percent (default 10), or if a benchmark present in
# the baseline is missing from the current run — a silently dropped bench
# is a gate with a hole in it, not a pass. Benchmarks only in the current
# run (added since the baseline) are noted and skipped.
#
# Usage:
#
#	scripts/bench_diff.sh OLD.json NEW.json
#
# Environment:
#
#	BENCH_DIFF_THRESHOLD  regression threshold in percent (default 10)
#	BENCH_DIFF_WARN_ONLY  non-empty = report regressions but exit 0
#	                      (for CI on shared runners, where committed
#	                      baselines came from different hardware)
#
# The parser only understands the fixed layout bench_json.sh emits: a
# benchmark-name line followed by "cpuN" lines carrying ns_op. That keeps
# the script dependency-free (POSIX sh + awk, no jq).
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi
old=$1
new=$2
for f in "$old" "$new"; do
    if [ ! -f "$f" ]; then
        echo "bench_diff: no such file: $f" >&2
        exit 2
    fi
done

threshold=${BENCH_DIFF_THRESHOLD:-10}
warn_only=${BENCH_DIFF_WARN_ONLY:-}

# Emit "name/cpuN ns_op" pairs from one bench JSON file.
extract() {
    awk '
    /^[[:space:]]*"[^"]+": \{[[:space:]]*$/ {
        line = $0
        sub(/^[[:space:]]*"/, "", line)
        sub(/": \{[[:space:]]*$/, "", line)
        if (line != "benchmarks") name = line
        next
    }
    /"ns_op":/ {
        line = $0
        cpu = line
        sub(/^[[:space:]]*"/, "", cpu)
        sub(/".*$/, "", cpu)
        ns = line
        sub(/.*"ns_op":[[:space:]]*/, "", ns)
        sub(/[^0-9.].*$/, "", ns)
        if (name != "" && ns != "") printf "%s/%s %s\n", name, cpu, ns
    }' "$1"
}

extract "$old" > /tmp/bench_diff_old.$$
extract "$new" > /tmp/bench_diff_new.$$
trap 'rm -f /tmp/bench_diff_old.$$ /tmp/bench_diff_new.$$' EXIT

awk -v threshold="$threshold" -v warn_only="$warn_only" \
    -v oldfile="$old" -v newfile="$new" '
NR == FNR { old_ns[$1] = $2; next }
{ new_ns[$1] = $2; ordered[n++] = $1 }
END {
    printf "bench_diff: %s -> %s (threshold %s%%)\n\n", oldfile, newfile, threshold
    printf "%-32s %14s %14s %9s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "verdict"
    regressions = 0
    skipped = 0
    for (i = 0; i < n; i++) {
        key = ordered[i]
        # A benchmark in only one snapshot has no delta to judge (a new
        # bench added this PR, or one retired since the baseline). Skip it
        # with a note instead of emitting an empty or divide-by-zero row;
        # only benchmarks present on both sides can gate CI.
        if (!(key in old_ns)) {
            skipnote[skipped++] = key " (only in " newfile ")"
            continue
        }
        if (old_ns[key] + 0 == 0) {
            skipnote[skipped++] = key " (zero baseline in " oldfile ")"
            continue
        }
        delta = 100 * (new_ns[key] - old_ns[key]) / old_ns[key]
        verdict = "ok"
        if (delta > threshold) {
            verdict = "REGRESSED"
            regressions++
        } else if (delta < -threshold) {
            verdict = "improved"
        }
        printf "%-32s %14.0f %14.0f %+8.1f%%  %s\n", key, old_ns[key], new_ns[key], delta, verdict
    }
    # A baseline benchmark absent from the current run fails the gate: it
    # means the bench was renamed, filtered out, or silently broken, and a
    # regression in it would go unnoticed.
    missing = 0
    for (key in old_ns)
        if (!(key in new_ns))
            missingnote[missing++] = key
    for (i = 0; i < skipped; i++)
        printf "bench_diff: skipped %s: no counterpart to diff\n", skipnote[i]
    for (i = 0; i < missing; i++)
        printf "bench_diff: MISSING %s: in %s but not in %s\n", missingnote[i], oldfile, newfile
    if (regressions > 0 || missing > 0) {
        printf "\n"
        if (regressions > 0)
            printf "bench_diff: %d benchmark(s) regressed beyond %s%%\n", regressions, threshold
        if (missing > 0)
            printf "bench_diff: %d baseline benchmark(s) missing from the current run\n", missing
        if (warn_only != "") {
            printf "bench_diff: BENCH_DIFF_WARN_ONLY set, not failing\n"
            exit 0
        }
        exit 1
    }
    printf "\nbench_diff: no regressions beyond %s%%\n", threshold
}' /tmp/bench_diff_old.$$ /tmp/bench_diff_new.$$
