#!/bin/sh
# bench_json.sh — run the headline benchmarks at -cpu 1 and 4 and write
# BENCH_pr9.json with ns/op, B/op and allocs/op per width plus the measured
# parallel speedup (ns at cpu1 / ns at cpu4). On single-core hosts -cpu 4
# only adds scheduler overhead, so the ratio reads below 1 even for fully
# serial code — BenchmarkMFCSimulation (no pipeline parallelism) is the
# control that bounds the artifact; host_cpus, gomaxprocs and host_model
# record the hardware the numbers came from. ArborKernels/{tarjan,contract}
# is the single-threaded arborescence-kernel micro-benchmark comparing the
# two solver algorithms. IncrementalDetect/{full,delta} compares one-shot
# detection against the event-sourced session path answering from a warm
# per-component cache. DetectBatch vs DetectSequential is 32 detections as
# one /v1/detect/batch vs 32 individual /v1/detect round trips.
# GraphWarmup/{rebuild,snapshot} is wire-trace rebuild vs zero-copy CSR
# snapshot load; SnapshotLoad is the sgraph-level load microbench.
# SimulateModels/<name> runs one cascade per registered diffusion model on
# a shared mid-size network — the cross-model spread-cost comparison.
# DetectProfilerOverhead/{off,on} is the same labeled detect loop with the
# continuous profiler absent vs capturing on its default 2% duty cycle —
# the on/off ns/op ratio is the profiler's steady-state overhead.
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_pr10.json}
BENCHES='BenchmarkRIDEndToEnd$|BenchmarkForestExtraction$|BenchmarkMFCSimulation$|BenchmarkSimulateModels/|BenchmarkArborKernels/|BenchmarkIncrementalDetect/|BenchmarkGraphWarmup/|BenchmarkDetectBatch$|BenchmarkDetectSequential$|BenchmarkSnapshotLoad$|BenchmarkDetectProfilerOverhead/'

# Time-based benchtime so every bench gets a comparable measurement
# window: the sub-millisecond kernels run thousands of iterations (at a
# fixed low -benchtime Nx they sample a few ms of wall clock and swing
# past the bench_diff threshold run to run on a shared host), while the
# ~0.6s/op sequential baseline still runs just one.
RAW=$(go test -run '^$' -bench "$BENCHES" -benchmem -benchtime 300ms -cpu 1,4 . ./internal/server/ ./internal/sgraph/)
echo "$RAW"

host_model=$(awk -F: '/model name/ { gsub(/^[ \t]+/, "", $2); print $2; exit }' /proc/cpuinfo 2>/dev/null || true)
[ -n "$host_model" ] || host_model=$(uname -m)

echo "$RAW" | awk -v host_cpus="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)" \
    -v gomaxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}" \
    -v host_model="$host_model" '
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    cpu = 1
    if (match(name, /-[0-9]+$/)) {
        cpu = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    names[name] = 1
    ns_of[name, cpu] = ns
    b_of[name, cpu] = bytes
    a_of[name, cpu] = allocs
}
END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench_json.sh\",\n"
    printf "  \"host_cpus\": %d,\n", host_cpus
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs
    printf "  \"host_model\": \"%s\",\n", host_model
    printf "  \"note\": \"speedup_cpu4 = ns/op(cpu=1) / ns/op(cpu=4); on a single-core host -cpu 4 only adds scheduler overhead and the ratio reads below 1 even for serial code (MFCSimulation, which has no pipeline parallelism, is the control)\",\n"
    printf "  \"benchmarks\": {\n"
    n = 0
    for (name in names) ordered[n++] = name
    # stable output order
    for (i = 0; i < n; i++)
        for (j = i + 1; j < n; j++)
            if (ordered[j] < ordered[i]) { t = ordered[i]; ordered[i] = ordered[j]; ordered[j] = t }
    for (i = 0; i < n; i++) {
        name = ordered[i]
        printf "    \"%s\": {\n", name
        printf "      \"cpu1\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n", \
            ns_of[name, 1], b_of[name, 1], a_of[name, 1]
        printf "      \"cpu4\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n", \
            ns_of[name, 4], b_of[name, 4], a_of[name, 4]
        printf "      \"speedup_cpu4\": %.2f\n", ns_of[name, 1] / ns_of[name, 4]
        printf "    }%s\n", (i < n - 1) ? "," : ""
    }
    printf "  }\n"
    printf "}\n"
}' > "$OUT"

echo "wrote $OUT"
